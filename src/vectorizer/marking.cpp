/**
 * @file
 * Marking analysis implementation.
 */
#include "vectorizer/marking.h"

#include "ir/analysis.h"
#include "support/diagnostics.h"

namespace macross::vectorizer {

namespace {

using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

class Marker {
  public:
    Marker(const std::unordered_set<const Expr*>& extra_seeds,
           bool allow_lane_serial_if)
        : extraSeeds_(extra_seeds),
          allowLaneSerial_(allow_lane_serial_if)
    {
    }

    MarkResult run(const graph::FilterDef& def);

  private:
    /** True if evaluating @p e yields a lane-varying value. */
    bool exprIsVector(const ExprPtr& e) const;

    /**
     * Check a control-position expression (loop bound, array index,
     * peek offset): it must be lane-invariant and must not contain
     * tape reads or lane-varying seeds.
     */
    void checkScalarPosition(const ExprPtr& e, const char* what);

    bool sweep(const std::vector<StmtPtr>& stmts, bool under_vec_if);
    void validateControl(const std::vector<StmtPtr>& stmts);

    /**
     * May the branches of a lane-varying if be emitted per lane?
     * Straight-line assignments/stores only — no nested control, no
     * tape reads or writes.
     */
    bool laneSerializable(const std::vector<StmtPtr>& stmts);

    const std::unordered_set<const Expr*>& extraSeeds_;
    const bool allowLaneSerial_;
    std::unordered_set<const ir::Var*> marked_;
    std::unordered_set<const Stmt*> laneSerialIfs_;
    bool failed_ = false;
    std::string reason_;
};

bool
Marker::exprIsVector(const ExprPtr& e) const
{
    if (!e)
        return false;
    if (extraSeeds_.count(e.get()))
        return true;
    switch (e->kind) {
      case ExprKind::Pop:
      case ExprKind::Peek:
      case ExprKind::VPop:
      case ExprKind::VPeek:
        return true;
      case ExprKind::VarRef:
      case ExprKind::Load:
        if (marked_.count(e->var.get()))
            return true;
        break;
      default:
        break;
    }
    for (const auto& a : e->args) {
        if (exprIsVector(a))
            return true;
    }
    return false;
}

void
Marker::checkScalarPosition(const ExprPtr& e, const char* what)
{
    if (failed_ || !e)
        return;
    bool tapeRead = false;
    std::function<void(const ExprPtr&)> scan = [&](const ExprPtr& x) {
        if (!x)
            return;
        if (x->kind == ExprKind::Pop || x->kind == ExprKind::Peek ||
            x->kind == ExprKind::VPop || x->kind == ExprKind::VPeek) {
            tapeRead = true;
        }
        for (const auto& a : x->args)
            scan(a);
    };
    scan(e);
    if (tapeRead || exprIsVector(e)) {
        failed_ = true;
        reason_ = std::string("input-tape-dependent ") + what;
    }
}

bool
Marker::laneSerializable(const std::vector<StmtPtr>& stmts)
{
    for (const auto& sp : stmts) {
        switch (sp->kind) {
          case StmtKind::Assign:
          case StmtKind::Store:
            break;
          case StmtKind::Block:
            if (!laneSerializable(sp->body))
                return false;
            break;
          default:
            return false;
        }
    }
    return !ir::readsInputTape(stmts) && !ir::writesOutputTape(stmts);
}

bool
Marker::sweep(const std::vector<StmtPtr>& stmts, bool under_vec_if)
{
    bool changed = false;
    for (const auto& sp : stmts) {
        const Stmt& s = *sp;
        switch (s.kind) {
          case StmtKind::Assign:
          case StmtKind::AssignLane:
          case StmtKind::Store:
          case StmtKind::StoreLane:
            // Control dependence on a lane-varying if makes even a
            // constant assignment lane-varying.
            if ((under_vec_if || exprIsVector(s.a)) &&
                !marked_.count(s.var.get())) {
                marked_.insert(s.var.get());
                changed = true;
            }
            break;
          case StmtKind::Block:
          case StmtKind::For:
            changed |= sweep(s.body, under_vec_if);
            break;
          case StmtKind::If: {
            bool vecCond = under_vec_if || exprIsVector(s.a);
            changed |= sweep(s.body, vecCond);
            changed |= sweep(s.elseBody, vecCond);
            break;
          }
          default:
            break;
        }
    }
    return changed;
}

void
Marker::validateControl(const std::vector<StmtPtr>& stmts)
{
    for (const auto& sp : stmts) {
        if (failed_)
            return;
        const Stmt& s = *sp;
        switch (s.kind) {
          case StmtKind::For:
            checkScalarPosition(s.a, "loop bound");
            checkScalarPosition(s.b, "loop bound");
            if (marked_.count(s.var.get())) {
                failed_ = true;
                reason_ = "loop variable became lane-varying";
            }
            validateControl(s.body);
            break;
          case StmtKind::If: {
            if (exprIsVector(s.a)) {
                if (!allowLaneSerial_) {
                    failed_ = true;
                    reason_ = "input-tape-dependent if condition";
                } else if (!laneSerializable(s.body) ||
                           !laneSerializable(s.elseBody)) {
                    failed_ = true;
                    reason_ = "input-tape-dependent if with "
                              "non-serializable branches";
                } else {
                    laneSerialIfs_.insert(&s);
                }
            }
            validateControl(s.body);
            validateControl(s.elseBody);
            break;
          }
          case StmtKind::Store:
          case StmtKind::StoreLane:
            checkScalarPosition(s.b, "array subscript");
            break;
          case StmtKind::RPush:
            checkScalarPosition(s.b, "rpush offset");
            break;
          case StmtKind::Block:
            validateControl(s.body);
            break;
          default:
            break;
        }
        // Array subscripts and peek offsets inside expressions.
        if (failed_)
            return;
        std::function<void(const ExprPtr&)> scanExpr =
            [&](const ExprPtr& e) {
                if (!e || failed_)
                    return;
                if (e->kind == ExprKind::Load)
                    checkScalarPosition(e->args[0], "array subscript");
                if (e->kind == ExprKind::Peek ||
                    e->kind == ExprKind::VPeek) {
                    checkScalarPosition(e->args[0], "peek offset");
                }
                for (const auto& a : e->args)
                    scanExpr(a);
            };
        if (s.a)
            scanExpr(s.a);
        if (s.b)
            scanExpr(s.b);
    }
}

MarkResult
Marker::run(const graph::FilterDef& def)
{
    // Fixed point over work and init: init matters because a state
    // variable marked from the work body forces its init stores to be
    // widened too, and (for horizontal merging) differing init
    // constants seed state variables.
    while (true) {
        bool changed = sweep(def.work, false);
        changed |= sweep(def.init, false);
        if (!changed)
            break;
    }
    validateControl(def.work);
    validateControl(def.init);

    MarkResult r;
    r.ok = !failed_;
    r.reason = reason_;
    r.vectorVars = std::move(marked_);
    r.laneSerialIfs = std::move(laneSerialIfs_);
    return r;
}

} // namespace

MarkResult
markVectorVars(const graph::FilterDef& def,
               const std::unordered_set<const ir::Expr*>& extra_seeds,
               bool allow_lane_serial_if)
{
    Marker m(extra_seeds, allow_lane_serial_if);
    return m.run(def);
}

} // namespace macross::vectorizer
