/**
 * @file
 * Vector-marking analysis (Section 3.1 of the paper).
 *
 * Determines which variables of an actor body become vectors when SW
 * consecutive firings execute data-parallel. Seeds are the
 * destinations of tape reads (pop/peek) plus, for horizontal
 * SIMDization, constant-literal sites whose values differ across the
 * isomorphic actors being merged. Marks propagate through assignments
 * to a fixed point; everything else (loop counters, read-only state
 * tables, lane-invariant address arithmetic) stays scalar.
 *
 * The analysis simultaneously detects the conditions that prevent
 * SIMDization: input-tape-dependent addressing (array indexes or peek
 * offsets fed by marked values), tape reads appearing directly inside
 * control expressions, and input-tape-dependent control flow — unless
 * the caller opts into lane-serial ifs (Section 3.1's "switch to
 * scalar mode" around pop-dependent structures): an `if` whose
 * condition is lane-varying is then accepted when its branches are
 * straight-line assignments without tape accesses, every variable
 * assigned under it is marked vector (control dependence), and the
 * single-actor SIMDizer later emits it once per lane.
 */
#pragma once

#include <string>
#include <unordered_set>

#include "graph/filter.h"

namespace macross::vectorizer {

/** Result of the marking analysis. */
struct MarkResult {
    bool ok = false;            ///< Body is SIMDizable.
    std::string reason;         ///< Failure reason when !ok.
    /** Variables that become vectors (work and init bodies). */
    std::unordered_set<const ir::Var*> vectorVars;
    /** Ifs with lane-varying conditions, to be emitted per lane. */
    std::unordered_set<const ir::Stmt*> laneSerialIfs;
};

/**
 * Run the marking analysis over @p def's work body (and init body for
 * state-variable propagation).
 *
 * @param extra_seeds Expression nodes (identity) treated as
 *        lane-varying seeds (the horizontal pass's differing
 *        constants); may be empty.
 * @param allow_lane_serial_if Accept lane-varying if conditions and
 *        report them in laneSerialIfs (single-actor path only).
 */
MarkResult markVectorVars(
    const graph::FilterDef& def,
    const std::unordered_set<const ir::Expr*>& extra_seeds = {},
    bool allow_lane_serial_if = false);

} // namespace macross::vectorizer
