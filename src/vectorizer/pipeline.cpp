/**
 * @file
 * Algorithm-1 orchestration.
 */
#include "vectorizer/pipeline.h"

#include "vectorizer/prepass.h"

#include "support/diagnostics.h"
#include "vectorizer/cost_model.h"
#include "vectorizer/horizontal.h"
#include "vectorizer/segments.h"
#include "vectorizer/simdizable.h"
#include "vectorizer/tape_opt.h"
#include "vectorizer/vertical.h"

namespace macross::vectorizer {

using graph::Stream;
using graph::StreamKind;
using graph::StreamPtr;

namespace {

/** Mutable pass state threaded through the hierarchy walk. */
struct PassState {
    const SimdizeOptions* opts;
    std::unordered_set<const graph::FilterDef*> pending;
    std::vector<ActorReport> actions;

    bool shouldSimdize(const graph::FilterDef& def) const
    {
        if (!opts->enableSingleActor)
            return false;
        if (!isSimdizable(def).ok)
            return false;
        return opts->forceSimdize ||
               simdizationProfitable(def, opts->machine);
    }
};

StreamPtr transformNode(const StreamPtr& node, PassState& st);

StreamPtr
transformFilter(const StreamPtr& node, PassState& st)
{
    const graph::FilterDefPtr& def = node->filter;
    SimdizableVerdict v = isSimdizable(*def);
    if (!v.ok) {
        st.actions.push_back({def->name, "left scalar: " + v.reason});
        return node;
    }
    if (st.shouldSimdize(*def)) {
        st.pending.insert(def.get());
        return node;
    }
    st.actions.push_back({def->name, "left scalar: not profitable"});
    return node;
}

StreamPtr
transformPipeline(const StreamPtr& node, PassState& st)
{
    std::vector<StreamPtr> out;
    std::vector<int> runs =
        st.opts->enableVertical
            ? fusableRuns(node->children)
            : std::vector<int>(node->children.size(), -1);

    std::size_t i = 0;
    while (i < node->children.size()) {
        if (runs[i] >= 0) {
            std::vector<graph::FilterDefPtr> chain;
            std::size_t j = i;
            while (j < node->children.size() && runs[j] == runs[i]) {
                chain.push_back(node->children[j]->filter);
                ++j;
            }
            graph::FilterDefPtr fused = fuseVertically(chain);
            st.actions.push_back(
                {fused->name,
                 "vertically fused " + std::to_string(chain.size()) +
                     " actors"});
            if (st.opts->forceSimdize ||
                simdizationProfitable(*fused, st.opts->machine)) {
                st.pending.insert(fused.get());
            }
            out.push_back(graph::filterStream(fused));
            i = j;
        } else {
            out.push_back(transformNode(node->children[i], st));
            ++i;
        }
    }
    if (out.size() == 1)
        return out[0];
    return graph::pipeline(std::move(out));
}

StreamPtr
transformSplitJoin(const StreamPtr& node, PassState& st)
{
    if (st.opts->enableHorizontal) {
        SplitJoinLevels lv =
            splitJoinLevels(*node, st.opts->machine.simdWidth);
        if (lv.eligible) {
            std::vector<graph::FilterDefPtr> merged;
            bool ok = true;
            std::string why;
            for (const auto& level : lv.levels) {
                MergeOutcome mo = mergeIsomorphic(level);
                if (!mo.def) {
                    ok = false;
                    why = mo.reason;
                    break;
                }
                merged.push_back(mo.def);
            }
            if (ok) {
                std::vector<StreamPtr> stages;
                stages.push_back(graph::hSplit(
                    node->splitKind, node->splitWeights,
                    st.opts->machine.simdWidth,
                    merged.front()->inElem));
                for (const auto& d : merged) {
                    st.actions.push_back(
                        {d->name, "horizontally SIMDized"});
                    stages.push_back(graph::filterStream(d));
                }
                stages.push_back(graph::hJoin(
                    node->joinWeights, st.opts->machine.simdWidth,
                    merged.back()->outElem));
                return graph::pipeline(std::move(stages));
            }
            st.actions.push_back(
                {"split-join", "horizontal rejected: " + why});
        } else {
            st.actions.push_back(
                {"split-join", "horizontal ineligible: " + lv.reason});
        }
    }
    // Fall back: transform each branch independently.
    auto out = std::make_shared<Stream>(*node);
    out->children.clear();
    for (const auto& b : node->children)
        out->children.push_back(transformNode(b, st));
    return out;
}

StreamPtr
transformNode(const StreamPtr& node, PassState& st)
{
    switch (node->kind) {
      case StreamKind::Filter:
        return transformFilter(node, st);
      case StreamKind::Pipeline:
        return transformPipeline(node, st);
      case StreamKind::SplitJoin:
        return transformSplitJoin(node, st);
      case StreamKind::HSplit:
      case StreamKind::HJoin:
        return node;
    }
    panic("unknown StreamKind");
}

} // namespace

StreamPtr
normalize(const StreamPtr& node)
{
    if (node->kind == StreamKind::Filter ||
        node->kind == StreamKind::HSplit ||
        node->kind == StreamKind::HJoin) {
        return node;
    }
    auto out = std::make_shared<Stream>(*node);
    out->children.clear();
    for (const auto& c : node->children) {
        StreamPtr nc = normalize(c);
        if (node->kind == StreamKind::Pipeline &&
            nc->kind == StreamKind::Pipeline) {
            for (const auto& gc : nc->children)
                out->children.push_back(gc);
        } else {
            out->children.push_back(nc);
        }
    }
    return out;
}

CompiledProgram
macroSimdize(const graph::StreamPtr& program, const SimdizeOptions& opts)
{
    fatalIf(opts.machine.simdWidth < 2,
            "macro-SIMDization needs a SIMD machine");
    PassState st;
    st.opts = &opts;

    // Algorithm 1: Prepass-Optimizations(G); Prepass-Scheduling runs
    // implicitly (every phase rederives the schedule from rates).
    StreamPtr root = normalize(prepassOptimize(program));
    root = transformNode(root, st);
    root = normalize(root);

    CompiledProgram out;
    out.graph = graph::flatten(root);
    simdizePendingActors(out.graph, st.pending, opts, st.actions);
    graph::validate(out.graph);
    out.schedule = schedule::makeSchedule(out.graph);
    out.actions = std::move(st.actions);
    return out;
}

CompiledProgram
compileScalar(const graph::StreamPtr& program)
{
    // The same prepass runs on the scalar baseline so performance
    // comparisons isolate SIMDization, not constant folding.
    CompiledProgram out;
    out.graph = graph::flatten(normalize(prepassOptimize(program)));
    out.schedule = schedule::makeSchedule(out.graph);
    return out;
}

} // namespace macross::vectorizer
