/**
 * @file
 * Algorithm-1 orchestration.
 */
#include "vectorizer/pipeline.h"

#include "vectorizer/prepass.h"

#include "support/diagnostics.h"
#include "vectorizer/cost_model.h"
#include "vectorizer/horizontal.h"
#include "vectorizer/segments.h"
#include "vectorizer/simdizable.h"
#include "vectorizer/tape_opt.h"
#include "vectorizer/vertical.h"

namespace macross::vectorizer {

using graph::Stream;
using graph::StreamKind;
using graph::StreamPtr;
using report::ActorDecision;
using report::TransformKind;

namespace {

/** Mutable pass state threaded through the hierarchy walk. */
struct PassState {
    const SimdizeOptions* opts;
    std::unordered_set<const graph::FilterDef*> pending;
    report::CompilationReport report;

    /** Record a LeftScalar decision with an explanation. */
    void leaveScalar(const std::string& actor, std::string reason,
                     report::CostEstimate cost = {})
    {
        ActorDecision d;
        d.actor = actor;
        d.kind = TransformKind::LeftScalar;
        d.accepted = false;
        d.reason = std::move(reason);
        d.cost = cost;
        report.decisions.push_back(std::move(d));
    }

    /**
     * Run the profitability check for @p def, returning the estimates
     * so rejected decisions can carry the numbers that doomed them.
     */
    bool profitable(const graph::FilterDef& def,
                    report::CostEstimate& cost) const
    {
        cost.scalarCycles = opts->machine.simdWidth *
                            estimateFiringCycles(def, opts->machine);
        cost.simdCycles = estimateSimdizedCycles(
            def, opts->machine, TapeMode::StridedScalar,
            TapeMode::StridedScalar);
        return cost.simdCycles < cost.scalarCycles;
    }
};

StreamPtr transformNode(const StreamPtr& node, PassState& st);

StreamPtr
transformFilter(const StreamPtr& node, PassState& st)
{
    const graph::FilterDefPtr& def = node->filter;
    SimdizableVerdict v = isSimdizable(*def);
    if (!v.ok) {
        st.leaveScalar(def->name, v.reason);
        return node;
    }
    if (!st.opts->enableSingleActor) {
        st.leaveScalar(def->name, "single-actor disabled");
        return node;
    }
    report::CostEstimate cost;
    bool profitable = st.profitable(*def, cost);
    if (st.opts->forceSimdize || profitable) {
        st.pending.insert(def.get());
        return node;
    }
    st.leaveScalar(def->name, "not profitable", cost);
    return node;
}

StreamPtr
transformPipeline(const StreamPtr& node, PassState& st)
{
    std::vector<StreamPtr> out;
    std::vector<int> runs =
        st.opts->enableVertical
            ? fusableRuns(node->children)
            : std::vector<int>(node->children.size(), -1);

    std::size_t i = 0;
    while (i < node->children.size()) {
        if (runs[i] >= 0) {
            std::vector<graph::FilterDefPtr> chain;
            std::size_t j = i;
            while (j < node->children.size() && runs[j] == runs[i]) {
                chain.push_back(node->children[j]->filter);
                ++j;
            }
            graph::FilterDefPtr fused = fuseVertically(chain);
            ActorDecision d;
            d.actor = fused->name;
            d.kind = TransformKind::VerticalFusion;
            d.accepted = true;
            d.fusedActors = static_cast<int>(chain.size());
            st.report.decisions.push_back(std::move(d));

            report::CostEstimate cost;
            bool profitable = st.profitable(*fused, cost);
            if (st.opts->forceSimdize || profitable) {
                st.pending.insert(fused.get());
            } else {
                st.leaveScalar(fused->name,
                               "not profitable after fusion", cost);
            }
            out.push_back(graph::filterStream(fused));
            i = j;
        } else {
            out.push_back(transformNode(node->children[i], st));
            ++i;
        }
    }
    if (out.size() == 1)
        return out[0];
    return graph::pipeline(std::move(out));
}

StreamPtr
transformSplitJoin(const StreamPtr& node, PassState& st)
{
    if (st.opts->enableHorizontal) {
        SplitJoinLevels lv =
            splitJoinLevels(*node, st.opts->machine.simdWidth);
        if (lv.eligible) {
            std::vector<graph::FilterDefPtr> merged;
            bool ok = true;
            std::string why;
            for (const auto& level : lv.levels) {
                MergeOutcome mo = mergeIsomorphic(level);
                if (!mo.def) {
                    ok = false;
                    why = mo.reason;
                    break;
                }
                merged.push_back(mo.def);
            }
            if (ok) {
                std::vector<StreamPtr> stages;
                stages.push_back(graph::hSplit(
                    node->splitKind, node->splitWeights,
                    st.opts->machine.simdWidth,
                    merged.front()->inElem));
                for (const auto& d : merged) {
                    ActorDecision dec;
                    dec.actor = d->name;
                    dec.kind = TransformKind::Horizontal;
                    dec.accepted = true;
                    dec.lanes = st.opts->machine.simdWidth;
                    st.report.decisions.push_back(std::move(dec));
                    stages.push_back(graph::filterStream(d));
                }
                stages.push_back(graph::hJoin(
                    node->joinWeights, st.opts->machine.simdWidth,
                    merged.back()->outElem));
                return graph::pipeline(std::move(stages));
            }
            ActorDecision dec;
            dec.actor = "split-join";
            dec.kind = TransformKind::Horizontal;
            dec.accepted = false;
            dec.reason = "rejected: " + why;
            st.report.decisions.push_back(std::move(dec));
        } else {
            ActorDecision dec;
            dec.actor = "split-join";
            dec.kind = TransformKind::Horizontal;
            dec.accepted = false;
            dec.reason = "ineligible: " + lv.reason;
            st.report.decisions.push_back(std::move(dec));
        }
    }
    // Fall back: transform each branch independently.
    auto out = std::make_shared<Stream>(*node);
    out->children.clear();
    for (const auto& b : node->children)
        out->children.push_back(transformNode(b, st));
    return out;
}

StreamPtr
transformNode(const StreamPtr& node, PassState& st)
{
    switch (node->kind) {
      case StreamKind::Filter:
        return transformFilter(node, st);
      case StreamKind::Pipeline:
        return transformPipeline(node, st);
      case StreamKind::SplitJoin:
        return transformSplitJoin(node, st);
      case StreamKind::HSplit:
      case StreamKind::HJoin:
        return node;
    }
    panic("unknown StreamKind");
}

} // namespace

StreamPtr
normalize(const StreamPtr& node)
{
    if (node->kind == StreamKind::Filter ||
        node->kind == StreamKind::HSplit ||
        node->kind == StreamKind::HJoin) {
        return node;
    }
    auto out = std::make_shared<Stream>(*node);
    out->children.clear();
    for (const auto& c : node->children) {
        StreamPtr nc = normalize(c);
        if (node->kind == StreamKind::Pipeline &&
            nc->kind == StreamKind::Pipeline) {
            for (const auto& gc : nc->children)
                out->children.push_back(gc);
        } else {
            out->children.push_back(nc);
        }
    }
    return out;
}

CompiledProgram
macroSimdize(const graph::StreamPtr& program, const SimdizeOptions& opts)
{
    fatalIf(opts.machine.simdWidth < 2,
            "macro-SIMDization needs a SIMD machine");
    support::Trace* tr = opts.trace;
    support::Trace::Scope total(tr, "vectorizer.macroSimdize");

    PassState st;
    st.opts = &opts;

    // Algorithm 1: Prepass-Optimizations(G); Prepass-Scheduling runs
    // implicitly (every phase rederives the schedule from rates).
    StreamPtr root;
    {
        support::Trace::Scope s(tr, "vectorizer.prepass");
        root = normalize(prepassOptimize(program));
    }
    {
        support::Trace::Scope s(tr, "vectorizer.hierarchy");
        root = transformNode(root, st);
        root = normalize(root);
    }

    CompiledProgram out;
    {
        support::Trace::Scope s(tr, "vectorizer.flatten");
        out.graph = graph::flatten(root);
    }
    {
        support::Trace::Scope s(tr, "vectorizer.tape_opt");
        simdizePendingActors(out.graph, st.pending, opts, st.report);
        graph::validate(out.graph);
    }
    {
        support::Trace::Scope s(tr, "vectorizer.schedule");
        out.schedule = schedule::makeSchedule(out.graph);
    }
    out.report = std::move(st.report);

    if (tr && tr->enabled()) {
        tr->count("vectorizer.compilations");
        tr->count("vectorizer.decisions",
                  static_cast<std::int64_t>(out.report.decisions.size()));
        json::Value payload = json::Value::object();
        payload["actors"] = out.graph.actors.size();
        payload["tapes"] = out.graph.tapes.size();
        payload["decisions"] = out.report.decisions.size();
        payload["singleActor"] =
            out.report.countKind(TransformKind::SingleActor);
        payload["verticalFusion"] =
            out.report.countKind(TransformKind::VerticalFusion);
        payload["horizontal"] =
            out.report.countKind(TransformKind::Horizontal);
        tr->event("vectorizer", "macroSimdize", std::move(payload));
    }
    return out;
}

CompiledProgram
compileScalar(const graph::StreamPtr& program)
{
    // The same prepass runs on the scalar baseline so performance
    // comparisons isolate SIMDization, not constant folding.
    CompiledProgram out;
    out.graph = graph::flatten(normalize(prepassOptimize(program)));
    out.schedule = schedule::makeSchedule(out.graph);
    return out;
}

} // namespace macross::vectorizer
