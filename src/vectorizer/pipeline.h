/**
 * @file
 * MacroSS top-level SIMDization pipeline (Algorithm 1 of the paper):
 * prepass normalization, segment identification, vertical fusion,
 * horizontal SIMDization, single-actor SIMDization with tape
 * optimization, and final scheduling.
 *
 * Compilation produces a typed report::CompilationReport describing
 * every per-actor transform decision (kind, accepted/rejected, cost
 * model estimates, tape boundary modes); pass timings and counters go
 * to the optional support::Trace in SimdizeOptions.
 */
#pragma once

#include "graph/flat_graph.h"
#include "machine/machine_desc.h"
#include "schedule/steady_state.h"
#include "support/report.h"
#include "support/trace.h"

namespace macross::vectorizer {

/** Knobs controlling macro-SIMDization (defaults mirror the paper). */
struct SimdizeOptions {
    machine::MachineDesc machine = machine::coreI7();
    bool enableSingleActor = true;
    bool enableVertical = true;
    bool enableHorizontal = true;
    /** Permutation-based tape accesses (Section 3.4, Figure 7). */
    bool enablePermutedTapes = true;
    /** SAGU transposed tape layout (Section 3.4, Figures 8-9). */
    bool enableSagu = false;
    /** Skip the profitability check (used by tests). */
    bool forceSimdize = false;
    /** Optional sink for pass timers/counters/events (may be null). */
    support::Trace* trace = nullptr;
};

/** A compiled (possibly SIMDized) program ready to run. */
struct CompiledProgram {
    graph::FlatGraph graph;
    schedule::Schedule schedule;
    /** Typed per-actor transform decisions (empty for scalar builds). */
    report::CompilationReport report;
};

/** Run the full macro-SIMDization pipeline on a stream program. */
CompiledProgram macroSimdize(const graph::StreamPtr& program,
                             const SimdizeOptions& opts);

/** Compile without SIMDization (the scalar baseline). */
CompiledProgram compileScalar(const graph::StreamPtr& program);

/** Flatten nested pipelines (prepass normalization). */
graph::StreamPtr normalize(const graph::StreamPtr& node);

} // namespace macross::vectorizer
