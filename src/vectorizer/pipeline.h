/**
 * @file
 * MacroSS top-level SIMDization pipeline (Algorithm 1 of the paper):
 * prepass normalization, segment identification, vertical fusion,
 * horizontal SIMDization, single-actor SIMDization with tape
 * optimization, and final scheduling.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/flat_graph.h"
#include "machine/machine_desc.h"
#include "schedule/steady_state.h"

namespace macross::vectorizer {

/** Knobs controlling macro-SIMDization (defaults mirror the paper). */
struct SimdizeOptions {
    machine::MachineDesc machine = machine::coreI7();
    bool enableSingleActor = true;
    bool enableVertical = true;
    bool enableHorizontal = true;
    /** Permutation-based tape accesses (Section 3.4, Figure 7). */
    bool enablePermutedTapes = true;
    /** SAGU transposed tape layout (Section 3.4, Figures 8-9). */
    bool enableSagu = false;
    /** Skip the profitability check (used by tests). */
    bool forceSimdize = false;
};

/** One log line about a transform decision. */
struct ActorReport {
    std::string name;
    std::string action;
};

/** A compiled (possibly SIMDized) program ready to run. */
struct CompiledProgram {
    graph::FlatGraph graph;
    schedule::Schedule schedule;
    std::vector<ActorReport> actions;
};

/** Run the full macro-SIMDization pipeline on a stream program. */
CompiledProgram macroSimdize(const graph::StreamPtr& program,
                             const SimdizeOptions& opts);

/** Compile without SIMDization (the scalar baseline). */
CompiledProgram compileScalar(const graph::StreamPtr& program);

/** Flatten nested pipelines (prepass normalization). */
graph::StreamPtr normalize(const graph::StreamPtr& node);

} // namespace macross::vectorizer
