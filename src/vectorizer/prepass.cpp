/**
 * @file
 * Prepass constant folding implementation.
 */
#include "vectorizer/prepass.h"

#include <cmath>

#include "ir/analysis.h"
#include "ir/clone.h"
#include "support/diagnostics.h"

namespace macross::vectorizer {

using graph::FilterDef;
using graph::FilterDefPtr;
using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;

namespace {

/**
 * Fold a binary over two literals, performing exactly the arithmetic
 * the executor performs (int32 wraparound semantics aside — folding
 * stays in int64 like tryConstFold, which only matters for programs
 * already relying on overflow; those also fold identically because
 * the executor truncates on assignment the same way the literal is
 * truncated here).
 */
ExprPtr
foldBinaryLiterals(const Expr& e, const ExprPtr& a, const ExprPtr& b)
{
    using ir::BinaryOp;
    if (a->kind == ExprKind::IntImm && b->kind == ExprKind::IntImm) {
        auto x = static_cast<std::int32_t>(a->ival);
        auto y = static_cast<std::int32_t>(b->ival);
        std::int64_t r;
        switch (e.bop) {
          case BinaryOp::Add: r = std::int64_t{x} + y; break;
          case BinaryOp::Sub: r = std::int64_t{x} - y; break;
          case BinaryOp::Mul: r = std::int64_t{x} * y; break;
          case BinaryOp::Div:
            if (y == 0)
                return nullptr;
            r = x / y;
            break;
          case BinaryOp::Mod:
            if (y == 0)
                return nullptr;
            r = x % y;
            break;
          case BinaryOp::Min: r = std::min(x, y); break;
          case BinaryOp::Max: r = std::max(x, y); break;
          case BinaryOp::Shl: r = std::int64_t{x} << (y & 31); break;
          case BinaryOp::Shr: r = x >> (y & 31); break;
          case BinaryOp::And: r = x & y; break;
          case BinaryOp::Or: r = x | y; break;
          case BinaryOp::Xor: r = x ^ y; break;
          case BinaryOp::Eq: r = x == y; break;
          case BinaryOp::Ne: r = x != y; break;
          case BinaryOp::Lt: r = x < y; break;
          case BinaryOp::Le: r = x <= y; break;
          case BinaryOp::Gt: r = x > y; break;
          case BinaryOp::Ge: r = x >= y; break;
          default: return nullptr;
        }
        return ir::intImm(static_cast<std::int32_t>(r));
    }
    if (a->kind == ExprKind::FloatImm &&
        b->kind == ExprKind::FloatImm) {
        float x = a->fval, y = b->fval;
        switch (e.bop) {
          case BinaryOp::Add: return ir::floatImm(x + y);
          case BinaryOp::Sub: return ir::floatImm(x - y);
          case BinaryOp::Mul: return ir::floatImm(x * y);
          case BinaryOp::Div: return ir::floatImm(x / y);
          case BinaryOp::Min: return ir::floatImm(std::min(x, y));
          case BinaryOp::Max: return ir::floatImm(std::max(x, y));
          case BinaryOp::Eq: return ir::intImm(x == y);
          case BinaryOp::Ne: return ir::intImm(x != y);
          case BinaryOp::Lt: return ir::intImm(x < y);
          case BinaryOp::Le: return ir::intImm(x <= y);
          case BinaryOp::Gt: return ir::intImm(x > y);
          case BinaryOp::Ge: return ir::intImm(x >= y);
          default: return nullptr;
        }
    }
    return nullptr;
}

class Folder {
  public:
    std::vector<StmtPtr> foldStmts(const std::vector<StmtPtr>& stmts);
    ExprPtr fold(const ExprPtr& e);
};

ExprPtr
Folder::fold(const ExprPtr& ep)
{
    const Expr& e = *ep;
    switch (e.kind) {
      case ExprKind::Binary: {
        ExprPtr a = fold(e.args[0]);
        ExprPtr b = fold(e.args[1]);
        if (ExprPtr lit = foldBinaryLiterals(e, a, b))
            return lit;
        // NOTE: value-dependent identity rules (x*1 -> x, x+0 -> x)
        // are deliberately absent: they fire only for particular
        // constant values and would make actors that differ only in
        // constants structurally different, destroying the
        // isomorphism horizontal SIMDization needs. Literal(x)Literal
        // folding is structure-uniform across isomorphic actors and
        // stays.
        if (a.get() == e.args[0].get() && b.get() == e.args[1].get())
            return ep;
        return ir::binary(e.bop, std::move(a), std::move(b));
      }
      case ExprKind::Unary: {
        ExprPtr a = fold(e.args[0]);
        if (e.uop == ir::UnaryOp::Neg) {
            if (a->kind == ExprKind::IntImm)
                return ir::intImm(-a->ival);
            if (a->kind == ExprKind::FloatImm)
                return ir::floatImm(-a->fval);
        }
        if (a.get() == e.args[0].get())
            return ep;
        return ir::unary(e.uop, std::move(a));
      }
      case ExprKind::Call: {
        std::vector<ExprPtr> args;
        bool changed = false;
        for (const auto& x : e.args) {
            args.push_back(fold(x));
            changed |= args.back().get() != x.get();
        }
        // Fold conversions and unary math over literals with exactly
        // the library calls the executor makes.
        if (args.size() == 1 &&
            args[0]->kind == ExprKind::FloatImm) {
            float x = args[0]->fval;
            switch (e.callee) {
              case ir::Intrinsic::Sqrt:
                return ir::floatImm(std::sqrt(x));
              case ir::Intrinsic::Sin:
                return ir::floatImm(std::sin(x));
              case ir::Intrinsic::Cos:
                return ir::floatImm(std::cos(x));
              case ir::Intrinsic::Exp:
                return ir::floatImm(std::exp(x));
              case ir::Intrinsic::Log:
                return ir::floatImm(std::log(x));
              case ir::Intrinsic::Abs:
                return ir::floatImm(std::fabs(x));
              case ir::Intrinsic::Floor:
                return ir::floatImm(std::floor(x));
              case ir::Intrinsic::ToInt:
                return ir::intImm(static_cast<std::int32_t>(x));
              default:
                break;
            }
        }
        if (args.size() == 1 && args[0]->kind == ExprKind::IntImm) {
            auto x = static_cast<std::int32_t>(args[0]->ival);
            switch (e.callee) {
              case ir::Intrinsic::ToFloat:
                return ir::floatImm(static_cast<float>(x));
              case ir::Intrinsic::Abs:
                return ir::intImm(std::abs(x));
              default:
                break;
            }
        }
        if (!changed)
            return ep;
        return ir::call(e.callee, std::move(args));
      }
      default: {
        if (e.args.empty())
            return ep;
        auto n = std::make_shared<Expr>(e);
        bool changed = false;
        for (auto& a : n->args) {
            ExprPtr f = fold(a);
            changed |= f.get() != a.get();
            a = std::move(f);
        }
        return changed ? ExprPtr(n) : ep;
      }
    }
}

std::vector<StmtPtr>
Folder::foldStmts(const std::vector<StmtPtr>& stmts)
{
    std::vector<StmtPtr> out;
    out.reserve(stmts.size());
    for (const auto& sp : stmts) {
        const Stmt& s = *sp;
        auto n = std::make_shared<Stmt>(s);
        if (n->a)
            n->a = fold(n->a);
        if (n->b)
            n->b = fold(n->b);
        n->body = foldStmts(s.body);
        n->elseBody = foldStmts(s.elseBody);

        // if with a constant condition: keep only the taken branch
        // (legal for rates: the validator requires both branches to
        // move identical tape traffic).
        if (n->kind == StmtKind::If &&
            n->a->kind == ExprKind::IntImm) {
            const auto& taken =
                n->a->ival != 0 ? n->body : n->elseBody;
            for (const auto& t : taken)
                out.push_back(t);
            continue;
        }
        // for with zero (or negative) constant trips: only droppable
        // when the body moves no tape data.
        if (n->kind == StmtKind::For) {
            auto lo = ir::tryConstFold(n->a);
            auto hi = ir::tryConstFold(n->b);
            if (lo && hi && *hi <= *lo) {
                ir::TapeCounts tc = ir::countTapeAccesses(n->body);
                if (tc.pops == 0 && tc.pushes == 0 && tc.peeks == 0)
                    continue;
            }
        }
        out.push_back(std::move(n));
    }
    return out;
}

} // namespace

ir::ExprPtr
foldExpr(const ir::ExprPtr& e)
{
    Folder f;
    return f.fold(e);
}

FilterDefPtr
foldConstants(const FilterDef& def)
{
    Folder f;
    auto out = std::make_shared<FilterDef>(def);
    out->work = f.foldStmts(def.work);
    out->init = f.foldStmts(def.init);
    graph::validateFilter(*out);
    return out;
}

graph::StreamPtr
prepassOptimize(const graph::StreamPtr& program)
{
    auto out = std::make_shared<graph::Stream>(*program);
    if (out->kind == graph::StreamKind::Filter) {
        out->filter = foldConstants(*out->filter);
        return out;
    }
    for (auto& c : out->children)
        c = prepassOptimize(c);
    return out;
}

} // namespace macross::vectorizer
