/**
 * @file
 * Prepass classic optimizations (the Prepass-Optimizations phase of
 * Algorithm 1): constant folding and light simplification over
 * work/init bodies.
 *
 * Because filter/pipeline parameters are baked in as literals at
 * instantiation (both in the C++ builder API and the textual front
 * end), parameterized bodies are full of foldable arithmetic; folding
 * it mirrors the paper's "static parameter propagation" and keeps the
 * cost model honest. Folding is bit-exact: float literals are combined
 * with the same C++ float operations the interpreter and the generated
 * code execute, and `if`s with constant conditions are replaced by the
 * taken branch (legal for rates because the validator requires both
 * branches to move equal tape traffic).
 */
#pragma once

#include "graph/filter.h"
#include "graph/stream.h"

namespace macross::vectorizer {

/** Fold one expression tree (returns the input when nothing folds). */
ir::ExprPtr foldExpr(const ir::ExprPtr& e);

/** Return a copy of @p def with folded work and init bodies. */
graph::FilterDefPtr foldConstants(const graph::FilterDef& def);

/** Apply foldConstants to every filter in a hierarchical program. */
graph::StreamPtr prepassOptimize(const graph::StreamPtr& program);

} // namespace macross::vectorizer
