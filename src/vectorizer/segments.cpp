/**
 * @file
 * Segment identification implementation.
 */
#include "vectorizer/segments.h"

#include "vectorizer/simdizable.h"

namespace macross::vectorizer {

using graph::Stream;
using graph::StreamKind;
using graph::StreamPtr;

SplitJoinLevels
splitJoinLevels(const Stream& sj, int sw)
{
    SplitJoinLevels out;
    if (sj.kind != StreamKind::SplitJoin) {
        out.reason = "not a split-join";
        return out;
    }
    if (static_cast<int>(sj.children.size()) != sw) {
        out.reason = "branch count differs from SIMD width";
        return out;
    }
    for (int w : sj.splitWeights) {
        if (w != sj.splitWeights[0]) {
            out.reason = "non-uniform splitter weights";
            return out;
        }
    }
    for (int w : sj.joinWeights) {
        if (w != sj.joinWeights[0]) {
            out.reason = "non-uniform joiner weights";
            return out;
        }
    }

    // Extract each branch as a list of filters.
    std::vector<std::vector<graph::FilterDefPtr>> branches;
    for (const auto& b : sj.children) {
        std::vector<graph::FilterDefPtr> filters;
        if (b->kind == StreamKind::Filter) {
            filters.push_back(b->filter);
        } else if (b->kind == StreamKind::Pipeline) {
            for (const auto& c : b->children) {
                if (c->kind != StreamKind::Filter) {
                    out.reason = "branch contains nested structure";
                    return out;
                }
                filters.push_back(c->filter);
            }
        } else {
            out.reason = "branch contains nested structure";
            return out;
        }
        if (!branches.empty() &&
            filters.size() != branches[0].size()) {
            out.reason = "branches have different lengths";
            return out;
        }
        branches.push_back(std::move(filters));
    }

    const std::size_t depth = branches[0].size();
    out.levels.resize(depth);
    for (std::size_t l = 0; l < depth; ++l) {
        for (const auto& b : branches)
            out.levels[l].push_back(b[l]);
    }
    out.eligible = true;
    return out;
}

std::vector<int>
fusableRuns(const std::vector<StreamPtr>& children)
{
    std::vector<int> runId(children.size(), -1);
    int nextRun = 0;
    std::size_t i = 0;
    while (i < children.size()) {
        if (children[i]->kind != StreamKind::Filter ||
            !isVerticallyFusable(*children[i]->filter, true).ok) {
            ++i;
            continue;
        }
        std::size_t j = i + 1;
        while (j < children.size() &&
               children[j]->kind == StreamKind::Filter &&
               isVerticallyFusable(*children[j]->filter, false).ok) {
            ++j;
        }
        if (j - i >= 2) {
            for (std::size_t k = i; k < j; ++k)
                runId[k] = nextRun;
            ++nextRun;
        }
        i = j;
    }
    return runId;
}

} // namespace macross::vectorizer
