/**
 * @file
 * Vectorizable-segment identification (the Identify-Vectorizable-
 * Segments phase of Algorithm 1): split-join eligibility for
 * horizontal SIMDization and fusable-run detection for vertical
 * SIMDization.
 */
#pragma once

#include <string>
#include <vector>

#include "graph/stream.h"

namespace macross::vectorizer {

/** Level-aligned view of a split-join's branches. */
struct SplitJoinLevels {
    bool eligible = false;
    std::string reason;
    /** levels[l][b] = filter of branch b at pipeline position l. */
    std::vector<std::vector<graph::FilterDefPtr>> levels;
};

/**
 * Check a split-join for horizontal eligibility on a @p sw lane
 * machine (Section 3.3): exactly sw branches, each a filter or a
 * pipeline of filters of equal length, uniform splitter and joiner
 * weights. Isomorphism is verified later, level by level, during the
 * merge itself.
 */
SplitJoinLevels splitJoinLevels(const graph::Stream& sj, int sw);

/**
 * Partition a pipeline's children into maximal vertically fusable
 * runs. Returns one entry per child: the run id it belongs to, or -1
 * when it is not part of any run of length >= 2.
 */
std::vector<int> fusableRuns(
    const std::vector<graph::StreamPtr>& children);

} // namespace macross::vectorizer
