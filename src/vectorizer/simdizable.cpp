/**
 * @file
 * SIMDizability classification.
 */
#include "vectorizer/simdizable.h"

#include "ir/analysis.h"
#include "vectorizer/marking.h"

namespace macross::vectorizer {

namespace {

/** True if the work body contains any peek expression. */
bool
usesPeek(const graph::FilterDef& def)
{
    bool found = false;
    ir::forEachExpr(def.work, [&](const ir::Expr& e) {
        if (e.kind == ir::ExprKind::Peek ||
            e.kind == ir::ExprKind::VPeek) {
            found = true;
        }
    });
    return found;
}

} // namespace

SimdizableVerdict
isSimdizable(const graph::FilterDef& def)
{
    if (def.vectorLanes > 1)
        return {false, "already vectorized"};
    if (def.isStateful())
        return {false, "stateful actor"};
    if (def.pop == 0 && def.push == 0)
        return {false, "actor moves no data"};
    MarkResult mr =
        markVectorVars(def, {}, /*allow_lane_serial_if=*/true);
    if (!mr.ok)
        return {false, mr.reason};
    return {true, ""};
}

SimdizableVerdict
isVerticallyFusable(const graph::FilterDef& def, bool is_first)
{
    SimdizableVerdict v = isSimdizable(def);
    if (!v.ok)
        return v;
    if (!is_first && (def.isPeeking() || usesPeek(def)))
        return {false, "interior actor peeks"};
    if (def.pop == 0 || def.push == 0)
        return {false, "fusion endpoints must both pop and push"};
    return {true, ""};
}

} // namespace macross::vectorizer
