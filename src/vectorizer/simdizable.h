/**
 * @file
 * SIMDizability classification of actors (Section 3.1).
 *
 * An actor is eligible for single-actor (and hence vertical)
 * SIMDization iff it is stateless, its body passes the marking
 * analysis (no input-tape-dependent control flow or addressing), and
 * it moves data every firing. Splitters and joiners are excluded by
 * construction (they are not filters).
 */
#pragma once

#include <string>

#include "graph/filter.h"

namespace macross::vectorizer {

/** Verdict with a human-readable reason when negative. */
struct SimdizableVerdict {
    bool ok = false;
    std::string reason;
};

/** Classify @p def for single-actor/vertical SIMDization. */
SimdizableVerdict isSimdizable(const graph::FilterDef& def);

/**
 * May @p def be an interior member of a vertically fused pipeline?
 * Requires SIMDizability plus peek == pop (an interior peeker would
 * leave a sliding window in the fused actor's internal buffer, i.e.
 * introduce state; the paper likewise forbids interior peeking).
 */
SimdizableVerdict isVerticallyFusable(const graph::FilterDef& def,
                                      bool is_first);

} // namespace macross::vectorizer
