/**
 * @file
 * Single-actor SIMDization implementation.
 */
#include "vectorizer/single_actor.h"

#include "ir/analysis.h"
#include "ir/clone.h"
#include "machine/permutation.h"
#include "support/diagnostics.h"
#include "support/math_util.h"
#include "vectorizer/marking.h"
#include "vectorizer/simdizable.h"

namespace macross::vectorizer {

using graph::FilterDef;
using graph::FilterDefPtr;
using ir::BlockBuilder;
using ir::Expr;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;
using ir::VarPtr;

std::string
toString(TapeMode m)
{
    switch (m) {
      case TapeMode::StridedScalar: return "strided-scalar";
      case TapeMode::PermutedVector: return "permuted-vector";
      case TapeMode::SaguVector: return "sagu-vector";
    }
    panic("unknown TapeMode");
}

namespace {

VarPtr
freshVar(const std::string& name, ir::Type t, int array_size = 0)
{
    auto v = std::make_shared<ir::Var>();
    v->name = name;
    v->type = t;
    v->arraySize = array_size;
    v->kind = ir::VarKind::Local;
    return v;
}

/** Recursive helper for normalizeTapeReads. */
class ReadNormalizer {
  public:
    std::vector<StmtPtr> run(const std::vector<StmtPtr>& stmts)
    {
        BlockBuilder out;
        for (const auto& sp : stmts)
            normStmt(*sp, out);
        return out.take();
    }

  private:
    ExprPtr extract(const ExprPtr& e, BlockBuilder& out)
    {
        if (!e)
            return e;
        if (e->kind == ExprKind::Pop || e->kind == ExprKind::Peek) {
            // Hoist into its own assignment. Offsets of peeks are
            // scalar expressions and stay in place.
            VarPtr tmp = freshVar("_t" + std::to_string(counter_++),
                                  e->type);
            ExprPtr read = e;
            if (e->kind == ExprKind::Peek) {
                auto n = std::make_shared<Expr>(*e);
                n->args = {extract(e->args[0], out)};
                read = n;
            }
            out.assign(tmp, read);
            return ir::varRef(tmp);
        }
        if (e->args.empty())
            return e;
        auto n = std::make_shared<Expr>(*e);
        for (auto& a : n->args)
            a = extract(a, out);
        return n;
    }

    /** Like extract but keeps a read that is already the full RHS. */
    ExprPtr extractRhs(const ExprPtr& e, BlockBuilder& out)
    {
        if (e && (e->kind == ExprKind::Pop || e->kind == ExprKind::Peek))
            return e;
        return extract(e, out);
    }

    void normStmt(const Stmt& s, BlockBuilder& out)
    {
        switch (s.kind) {
          case StmtKind::Block: {
            out.append(ir::makeBlock(run(s.body)));
            return;
          }
          case StmtKind::For: {
            auto n = std::make_shared<Stmt>(s);
            n->body = run(s.body);
            out.append(n);
            return;
          }
          case StmtKind::If: {
            auto n = std::make_shared<Stmt>(s);
            n->body = run(s.body);
            n->elseBody = run(s.elseBody);
            out.append(n);
            return;
          }
          default: {
            auto n = std::make_shared<Stmt>(s);
            if (s.kind == StmtKind::Assign) {
                n->a = extractRhs(s.a, out);
            } else if (n->a) {
                n->a = extract(s.a, out);
            }
            if (n->b)
                n->b = extract(s.b, out);
            out.append(n);
            return;
          }
        }
    }

    int counter_ = 0;
};

bool
containsTapeOps(const std::vector<StmtPtr>& stmts)
{
    return ir::readsInputTape(stmts) || ir::writesOutputTape(stmts);
}

std::optional<std::vector<StmtPtr>>
unrollInto(const std::vector<StmtPtr>& stmts, int& budget)
{
    std::vector<StmtPtr> out;
    for (const auto& sp : stmts) {
        if (--budget < 0)
            return std::nullopt;
        const Stmt& s = *sp;
        switch (s.kind) {
          case StmtKind::Block: {
            auto body = unrollInto(s.body, budget);
            if (!body)
                return std::nullopt;
            out.push_back(ir::makeBlock(std::move(*body)));
            break;
          }
          case StmtKind::If: {
            if (containsTapeOps(s.body) || containsTapeOps(s.elseBody))
                return std::nullopt;
            out.push_back(sp);
            break;
          }
          case StmtKind::For: {
            std::vector<StmtPtr> asVec{sp};
            if (!containsTapeOps(asVec)) {
                out.push_back(sp);
                break;
            }
            auto lo = ir::tryConstFold(s.a);
            auto hi = ir::tryConstFold(s.b);
            if (!lo || !hi)
                return std::nullopt;
            for (std::int64_t v = *lo; v < *hi; ++v) {
                ir::Rewriter rw;
                const ir::Var* iv = s.var.get();
                rw.exprHook = [iv, v](const Expr& e, ir::Rewriter&) -> ExprPtr {
                    if (e.kind == ExprKind::VarRef && e.var.get() == iv)
                        return ir::intImm(v);
                    return nullptr;
                };
                std::vector<StmtPtr> iter = rw.rewrite(s.body);
                auto expanded = unrollInto(iter, budget);
                if (!expanded)
                    return std::nullopt;
                for (auto& st : *expanded)
                    out.push_back(std::move(st));
            }
            break;
          }
          default:
            out.push_back(sp);
            break;
        }
    }
    return out;
}

/** True if every pop/push is a statically enumerable top-level site
 * and (for the input side) the body never peeks. Blocks are looked
 * through; loops/ifs must not contain tape ops by this point. */
bool
sitesAreTopLevel(const std::vector<StmtPtr>& stmts, bool in_side)
{
    bool ok = true;
    std::function<void(const std::vector<StmtPtr>&, bool)> walk =
        [&](const std::vector<StmtPtr>& ss, bool top) {
            for (const auto& sp : ss) {
                const Stmt& s = *sp;
                switch (s.kind) {
                  case StmtKind::Block:
                    walk(s.body, top);
                    break;
                  case StmtKind::For:
                  case StmtKind::If:
                    walk(s.body, false);
                    walk(s.elseBody, false);
                    break;
                  default:
                    break;
                }
                if (in_side) {
                    bool reads = false;
                    std::vector<StmtPtr> one{sp};
                    if (s.kind != StmtKind::Block &&
                        s.kind != StmtKind::For &&
                        s.kind != StmtKind::If) {
                        reads = ir::readsInputTape(one);
                    }
                    if (reads) {
                        bool barePop = s.kind == StmtKind::Assign &&
                                       s.a->kind == ExprKind::Pop;
                        if (!top || !barePop)
                            ok = false;
                    }
                } else {
                    if (s.kind == StmtKind::Push && !top)
                        ok = false;
                    if (s.kind == StmtKind::RPush ||
                        s.kind == StmtKind::VPush ||
                        s.kind == StmtKind::VRPush) {
                        ok = false;
                    }
                }
            }
        };
    walk(stmts, true);
    return ok;
}

/** The core rewriting engine for one actor. */
class Simdizer {
  public:
    Simdizer(const FilterDef& def, int sw, BoundaryModes modes)
        : def_(def), sw_(sw), modes_(modes)
    {
    }

    SimdizeOutcome run();

  private:
    ExprPtr widen(ExprPtr e)
    {
        if (!e->type.isVector())
            return ir::splat(std::move(e), sw_);
        return e;
    }

    const FilterDef& def_;
    int sw_;
    BoundaryModes modes_;
};

SimdizeOutcome
Simdizer::run()
{
    SimdizeOutcome outcome;
    outcome.inMode = def_.pop > 0 ? modes_.in : TapeMode::StridedScalar;
    outcome.outMode =
        def_.push > 0 ? modes_.out : TapeMode::StridedScalar;

    // --- Stage 1: prepare the body for the requested modes. ---
    FilterDefPtr prepared = normalizeTapeReads(def_);
    bool wantVector = outcome.inMode != TapeMode::StridedScalar ||
                      outcome.outMode != TapeMode::StridedScalar;
    if (wantVector) {
        int budget = 8192;
        auto unrolled = unrollTapeLoops(prepared->work, budget);
        if (!unrolled) {
            outcome.inMode = TapeMode::StridedScalar;
            outcome.outMode = TapeMode::StridedScalar;
            outcome.note = "vector boundary downgraded: "
                           "loops with tape accesses not unrollable; ";
        } else {
            auto d2 = std::make_shared<FilterDef>(*prepared);
            d2->work = std::move(*unrolled);
            prepared = normalizeTapeReads(*d2);
        }
    }
    if (outcome.inMode != TapeMode::StridedScalar) {
        bool eligible = !def_.isPeeking() &&
                        sitesAreTopLevel(prepared->work, true);
        if (outcome.inMode == TapeMode::PermutedVector &&
            !isPowerOfTwo(def_.pop)) {
            eligible = false;
        }
        if (!eligible) {
            outcome.inMode = TapeMode::StridedScalar;
            outcome.note += "input boundary downgraded to strided; ";
        }
    }
    if (outcome.outMode != TapeMode::StridedScalar) {
        bool eligible = sitesAreTopLevel(prepared->work, false);
        if (outcome.outMode == TapeMode::PermutedVector &&
            !isPowerOfTwo(def_.push)) {
            eligible = false;
        }
        if (!eligible) {
            outcome.outMode = TapeMode::StridedScalar;
            outcome.note += "output boundary downgraded to strided; ";
        }
    }

    // --- Stage 2: marking (lane-serial ifs permitted here). ---
    MarkResult marks =
        markVectorVars(*prepared, {}, /*allow_lane_serial_if=*/true);
    panicIf(!marks.ok, "singleActorSimdize on non-SIMDizable actor ",
            def_.name, ": ", marks.reason);

    // --- Stage 3: widen marked variables. ---
    ir::VarMap varMap;
    std::vector<VarPtr> newState;
    auto widenVar = [&](const VarPtr& v) {
        if (!marks.vectorVars.count(v.get()))
            return v;
        auto nv = std::make_shared<ir::Var>(*v);
        nv->name = v->name + "_v";
        nv->type = v->type.widened(sw_);
        varMap.set(v, nv);
        return nv;
    };
    for (const auto& sv : prepared->stateVars)
        newState.push_back(widenVar(sv));
    // Locals are discovered by walking the bodies once; widenVar
    // registers the replacement in varMap for marked ones.
    {
        std::unordered_set<const ir::Var*> seen;
        auto collect = [&](const std::vector<StmtPtr>& ss) {
            ir::forEachStmt(ss, [&](const Stmt& s) {
                if (s.var && !seen.count(s.var.get())) {
                    seen.insert(s.var.get());
                    if (s.var->kind == ir::VarKind::Local)
                        widenVar(s.var);
                }
            });
            ir::forEachExpr(ss, [&](const Expr& e) {
                if (e.var && !seen.count(e.var.get())) {
                    seen.insert(e.var.get());
                    if (e.var->kind == ir::VarKind::Local)
                        widenVar(e.var);
                }
            });
        };
        collect(prepared->work);
        collect(prepared->init);
    }

    // --- Stage 4: rewrite the body. ---
    const ir::Type vin = def_.inElem.widened(sw_);
    const ir::Type vout = def_.outElem.widened(sw_);
    const int pop = def_.pop;
    const int push = def_.push;

    // Permuted-input prologue variables (one per pop site).
    std::vector<VarPtr> inSite;
    // Permuted-output site variables (one per push site).
    std::vector<VarPtr> outSite;
    int inSiteCounter = 0;
    int outSiteCounter = 0;
    int tmpCounter = 0;

    // Per-lane projection of a lane-serial if branch: every marked
    // variable read becomes a lane extract and every write a lane
    // insert — the paper's "switch to scalar mode" around
    // input-tape-dependent control flow (Section 3.1).
    auto projectLane = [&](const std::vector<StmtPtr>& body, int lane,
                           ir::Rewriter& self, BlockBuilder& out) {
        ir::Rewriter lr;
        lr.exprHook = [&, lane](const Expr& e,
                                ir::Rewriter& rw2) -> ExprPtr {
            if (e.kind == ExprKind::VarRef) {
                VarPtr m = self.varMap.lookup(e.var);
                if (m->type.isVector())
                    return ir::laneRead(ir::varRef(m), lane);
                return nullptr;
            }
            if (e.kind == ExprKind::Load) {
                VarPtr m = self.varMap.lookup(e.var);
                if (m->type.isVector()) {
                    return ir::laneRead(
                        ir::load(m, rw2.rewrite(e.args[0])), lane);
                }
                return nullptr;
            }
            return nullptr;
        };
        lr.stmtHook = [&, lane](const Stmt& st, BlockBuilder& o,
                                ir::Rewriter& rw2) -> bool {
            if (st.kind == StmtKind::Assign) {
                VarPtr m = self.varMap.lookup(st.var);
                panicIf(!m->type.isVector(),
                        "scalar assignment under lane-serial if");
                o.assignLane(m, lane, rw2.rewrite(st.a));
                return true;
            }
            if (st.kind == StmtKind::Store) {
                VarPtr m = self.varMap.lookup(st.var);
                panicIf(!m->type.isVector(),
                        "scalar store under lane-serial if");
                o.storeLane(m, rw2.rewrite(st.b), lane,
                            rw2.rewrite(st.a));
                return true;
            }
            return false;
        };
        out.appendAll(lr.rewrite(body));
    };

    int condCounter = 0;
    ir::Rewriter rw;
    rw.varMap = varMap;
    rw.stmtHook = [&](const Stmt& s, BlockBuilder& out,
                      ir::Rewriter& self) -> bool {
        // Lane-serial if (lane-varying condition).
        if (s.kind == StmtKind::If && marks.laneSerialIfs.count(&s)) {
            ExprPtr cond = self.rewrite(s.a);
            panicIf(!cond->type.isVector(),
                    "lane-serial if with lane-invariant condition");
            VarPtr cv = freshVar(
                "_cond" + std::to_string(condCounter++), cond->type);
            out.assign(cv, std::move(cond));
            for (int l = 0; l < sw_; ++l) {
                out.ifElse(
                    ir::laneRead(ir::varRef(cv), l),
                    [&](BlockBuilder& b) {
                        projectLane(s.body, l, self, b);
                    },
                    s.elseBody.empty()
                        ? BlockBuilder::Filler(nullptr)
                        : [&](BlockBuilder& b) {
                              projectLane(s.elseBody, l, self, b);
                          });
            }
            return true;
        }
        // pop: x = pop()
        if (s.kind == StmtKind::Assign &&
            s.a->kind == ExprKind::Pop) {
            VarPtr dst = self.varMap.lookup(s.var);
            panicIf(!dst->type.isVector(),
                    "pop destination was not marked vector");
            switch (outcome.inMode) {
              case TapeMode::StridedScalar:
                for (int l = sw_ - 1; l >= 1; --l) {
                    out.assignLane(dst, l,
                                   ir::peekExpr(def_.inElem,
                                                ir::intImm(l * pop)));
                }
                out.assignLane(dst, 0, ir::popExpr(def_.inElem));
                break;
              case TapeMode::PermutedVector:
                out.assign(dst,
                           ir::varRef(inSite.at(inSiteCounter++)));
                break;
              case TapeMode::SaguVector:
                out.assign(dst, ir::vpopExpr(vin));
                break;
            }
            return true;
        }
        // peek: x = peek(k) (strided mode only)
        if (s.kind == StmtKind::Assign &&
            s.a->kind == ExprKind::Peek) {
            panicIf(outcome.inMode != TapeMode::StridedScalar,
                    "peek under a vector input boundary");
            VarPtr dst = self.varMap.lookup(s.var);
            panicIf(!dst->type.isVector(),
                    "peek destination was not marked vector");
            ExprPtr k = self.rewrite(s.a->args[0]);
            for (int l = sw_ - 1; l >= 0; --l) {
                ExprPtr off = l == 0
                                  ? k
                                  : ir::binary(ir::BinaryOp::Add, k,
                                               ir::intImm(l * pop));
                out.assignLane(dst, l, ir::peekExpr(def_.inElem, off));
            }
            return true;
        }
        // push(e)
        if (s.kind == StmtKind::Push) {
            ExprPtr ev = widen(self.rewrite(s.a));
            switch (outcome.outMode) {
              case TapeMode::StridedScalar: {
                VarPtr tmp = freshVar(
                    "_push" + std::to_string(tmpCounter++), vout);
                out.assign(tmp, std::move(ev));
                for (int l = sw_ - 1; l >= 1; --l) {
                    out.rpush(ir::laneRead(ir::varRef(tmp), l),
                              ir::intImm(l * push));
                }
                out.push(ir::laneRead(ir::varRef(tmp), 0));
                break;
              }
              case TapeMode::PermutedVector:
                out.assign(outSite.at(outSiteCounter++),
                           std::move(ev));
                break;
              case TapeMode::SaguVector:
                out.vpush(std::move(ev));
                break;
            }
            return true;
        }
        return false;
    };

    // Pre-create permuted-mode site variables.
    if (outcome.inMode == TapeMode::PermutedVector) {
        for (int j = 0; j < pop; ++j)
            inSite.push_back(
                freshVar("_in" + std::to_string(j), vin));
    }
    if (outcome.outMode == TapeMode::PermutedVector) {
        for (int j = 0; j < push; ++j)
            outSite.push_back(
                freshVar("_out" + std::to_string(j), vout));
    }

    BlockBuilder body;

    // Permuted-input prologue: contiguous vector loads + the
    // deinterleave network, then consume the block.
    if (outcome.inMode == TapeMode::PermutedVector) {
        std::vector<VarPtr> regs;
        for (int j = 0; j < pop; ++j) {
            VarPtr v = freshVar("_ld" + std::to_string(j), vin);
            body.assign(v, ir::vpeekExpr(vin, ir::intImm(j * sw_)));
            regs.push_back(v);
        }
        machine::PermNetwork net = machine::deinterleaveNetwork(pop);
        regs.resize(net.numRegs);
        for (const auto& st : net.steps) {
            VarPtr v = freshVar("_p" + std::to_string(st.out), vin);
            ir::Intrinsic fn =
                st.op == machine::PermOp::ExtractEven
                    ? ir::Intrinsic::ExtractEven
                    : ir::Intrinsic::ExtractOdd;
            body.assign(v, ir::call(fn, {ir::varRef(regs.at(st.a)),
                                         ir::varRef(regs.at(st.b))}));
            regs[st.out] = v;
        }
        for (int j = 0; j < pop; ++j)
            inSite[j] = regs.at(net.outputs[j]);
        body.advanceIn(static_cast<std::int64_t>(sw_) * pop);
    }

    body.appendAll(rw.rewrite(prepared->work));

    panicIf(outcome.inMode == TapeMode::PermutedVector &&
            inSiteCounter != pop,
            "pop site count mismatch in permuted mode");
    panicIf(outcome.outMode == TapeMode::PermutedVector &&
            outSiteCounter != push,
            "push site count mismatch in permuted mode");

    // Boundary epilogues.
    if (outcome.inMode == TapeMode::StridedScalar && pop > 0)
        body.advanceIn(static_cast<std::int64_t>(sw_ - 1) * pop);
    switch (outcome.outMode) {
      case TapeMode::StridedScalar:
        if (push > 0)
            body.advanceOut(static_cast<std::int64_t>(sw_ - 1) * push);
        break;
      case TapeMode::PermutedVector: {
        machine::PermNetwork net = machine::interleaveNetwork(push);
        std::vector<VarPtr> regs(outSite);
        regs.resize(net.numRegs);
        for (const auto& st : net.steps) {
            VarPtr v = freshVar("_q" + std::to_string(st.out), vout);
            ir::Intrinsic fn =
                st.op == machine::PermOp::InterleaveLo
                    ? ir::Intrinsic::InterleaveLo
                    : ir::Intrinsic::InterleaveHi;
            body.assign(v, ir::call(fn, {ir::varRef(regs.at(st.a)),
                                         ir::varRef(regs.at(st.b))}));
            regs[st.out] = v;
        }
        for (int j = 0; j < push; ++j) {
            body.vrpush(ir::varRef(regs.at(net.outputs[j])),
                        ir::intImm(j * sw_));
        }
        body.advanceOut(static_cast<std::int64_t>(sw_) * push);
        break;
      }
      case TapeMode::SaguVector:
        break;
    }

    // --- Stage 5: assemble the vectorized definition. ---
    auto out = std::make_shared<FilterDef>();
    out->name = def_.name + "_v";
    out->inElem = def_.inElem;
    out->outElem = def_.outElem;
    out->pop = sw_ * pop;
    out->push = sw_ * push;
    out->peek = std::max<int>(out->pop, (sw_ - 1) * pop + def_.peek);
    out->stateVars = std::move(newState);
    {
        ir::Rewriter initRw;
        initRw.varMap = varMap;
        out->init = initRw.rewrite(prepared->init);
    }
    out->work = body.take();
    out->vectorLanes = sw_;
    out->fusedFrom = def_.fusedFrom;
    graph::validateFilter(*out);
    outcome.def = std::move(out);
    return outcome;
}

} // namespace

FilterDefPtr
normalizeTapeReads(const FilterDef& def)
{
    auto out = std::make_shared<FilterDef>(def);
    ReadNormalizer n;
    out->work = n.run(def.work);
    return out;
}

std::optional<std::vector<StmtPtr>>
unrollTapeLoops(const std::vector<StmtPtr>& stmts, int max_stmts)
{
    int budget = max_stmts;
    return unrollInto(stmts, budget);
}

SimdizeOutcome
singleActorSimdize(const FilterDef& def, int sw, BoundaryModes requested)
{
    fatalIf(sw < 2, "SIMD width must be >= 2");
    SimdizableVerdict v = isSimdizable(def);
    fatalIf(!v.ok, "actor ", def.name, " is not SIMDizable: ", v.reason);
    Simdizer s(def, sw, requested);
    return s.run();
}

} // namespace macross::vectorizer
