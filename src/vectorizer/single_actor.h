/**
 * @file
 * Single-actor SIMDization (Section 3.1) with the three tape-boundary
 * strategies of Sections 3.1/3.4:
 *
 *  - StridedScalar: tapes stay scalar; each pop becomes SW strided
 *    peeks + a pop packing a vector lane by lane, each push becomes
 *    SW-1 random-access pushes + a push unpacking lane by lane, and
 *    the work function ends with AdvanceIn/AdvanceOut covering the
 *    (SW-1) peer firings folded into the data-parallel firing.
 *  - PermutedVector: the boundary is accessed with contiguous vector
 *    loads/stores plus an extract_even/extract_odd (or interleave)
 *    network of X*log2(X) operations (Figure 7). Requires
 *    power-of-two rates, no peeking, and statically enumerable access
 *    sites (loops containing tape accesses are unrolled first).
 *  - SaguVector: the boundary uses plain vector accesses against a
 *    block-transposed tape; the scalar neighbor compensates via the
 *    SAGU address walk. Same structural requirements as
 *    PermutedVector minus the power-of-two restriction.
 *
 * Requested modes that turn out ineligible are downgraded to
 * StridedScalar, and the outcome records the modes actually used.
 */
#pragma once

#include <optional>
#include <string>

#include "graph/filter.h"

namespace macross::vectorizer {

/** Boundary access strategy for one side of a SIMDized actor. */
enum class TapeMode {
    StridedScalar,
    PermutedVector,
    SaguVector,
};

std::string toString(TapeMode m);

/** Requested boundary strategies. */
struct BoundaryModes {
    TapeMode in = TapeMode::StridedScalar;
    TapeMode out = TapeMode::StridedScalar;
};

/** Result of SIMDizing one actor. */
struct SimdizeOutcome {
    graph::FilterDefPtr def;  ///< The vectorized definition.
    TapeMode inMode = TapeMode::StridedScalar;   ///< As emitted.
    TapeMode outMode = TapeMode::StridedScalar;  ///< As emitted.
    std::string note;  ///< Downgrade reasons, if any.
};

/**
 * Let-bind every pop/peek into its own assignment so later transforms
 * only see tape reads as full right-hand sides. Exposed for testing.
 */
graph::FilterDefPtr normalizeTapeReads(const graph::FilterDef& def);

/**
 * Fully unroll constant-trip loops whose bodies touch tapes (a
 * prerequisite for the vector boundary modes). Returns nullopt when a
 * trip count is not a compile-time constant, when tape accesses occur
 * under `if`, or when unrolling exceeds @p max_stmts statements.
 * Exposed for testing.
 */
std::optional<std::vector<ir::StmtPtr>>
unrollTapeLoops(const std::vector<ir::StmtPtr>& stmts, int max_stmts);

/**
 * SIMDize @p def for @p sw lanes using (at most) the requested
 * boundary modes. @p def must satisfy isSimdizable().
 */
SimdizeOutcome singleActorSimdize(const graph::FilterDef& def, int sw,
                                  BoundaryModes requested);

} // namespace macross::vectorizer
