/**
 * @file
 * Tape optimization implementation.
 */
#include "vectorizer/tape_opt.h"

#include "support/diagnostics.h"
#include "vectorizer/cost_model.h"
#include "vectorizer/single_actor.h"

namespace macross::vectorizer {

using graph::Actor;
using graph::ActorKind;
using graph::FlatGraph;

namespace {

/**
 * Does the actor at the far end of @p tape access it with scalar
 * reads/writes (making it a legal SAGU walker)?
 */
bool
endpointIsScalar(const FlatGraph& g, int actor_id,
                 const std::unordered_set<const graph::FilterDef*>&
                     pending)
{
    const Actor& a = g.actor(actor_id);
    switch (a.kind) {
      case ActorKind::Filter:
        if (pending.count(a.def.get()))
            return false;  // Will be vectorized itself.
        return a.def->vectorLanes == 1;
      case ActorKind::Splitter:
        // A horizontal splitter writes its single output tape with
        // vector pushes; a plain splitter is scalar on all ports.
        return !a.horizontal;
      case ActorKind::Joiner:
        // An HJoiner reads its input as vectors but writes its output
        // scalar; as a *producer* it is a legal walker. As a consumer
        // endpoint it is only reached via its vector input, which is
        // never a SIMDized filter's tape, so treating it as scalar on
        // the output side only is handled by the caller context.
        return !a.horizontal;
      default:
        return false;
    }
}

/** HJoiner output is scalar even though the actor is horizontal. */
bool
producerIsScalar(const FlatGraph& g, int actor_id,
                 const std::unordered_set<const graph::FilterDef*>&
                     pending)
{
    const Actor& a = g.actor(actor_id);
    if (a.kind == ActorKind::Joiner)
        return true;  // Joiner pushes are always scalar.
    if (a.kind == ActorKind::Splitter)
        return !a.horizontal;
    return endpointIsScalar(g, actor_id, pending);
}

/** HSplitter input is scalar even though the actor is horizontal. */
bool
consumerIsScalar(const FlatGraph& g, int actor_id,
                 const std::unordered_set<const graph::FilterDef*>&
                     pending)
{
    const Actor& a = g.actor(actor_id);
    if (a.kind == ActorKind::Splitter)
        return true;  // Splitter pops are always scalar.
    if (a.kind == ActorKind::Joiner)
        return !a.horizontal;
    return endpointIsScalar(g, actor_id, pending);
}

/** Map the emitted TapeMode onto the report-layer enum. */
report::TapeAccess
toReportMode(TapeMode m)
{
    switch (m) {
      case TapeMode::StridedScalar:
        return report::TapeAccess::StridedScalar;
      case TapeMode::PermutedVector:
        return report::TapeAccess::PermutedVector;
      case TapeMode::SaguVector:
        return report::TapeAccess::SaguVector;
    }
    panic("unknown TapeMode");
}

} // namespace

void
simdizePendingActors(
    FlatGraph& g,
    const std::unordered_set<const graph::FilterDef*>& pending,
    const SimdizeOptions& opts, report::CompilationReport& rep)
{
    const int sw = opts.machine.simdWidth;
    for (auto& a : g.actors) {
        if (!a.isFilter() || !pending.count(a.def.get()))
            continue;

        bool inScalar =
            !a.inputs.empty() &&
            producerIsScalar(g, g.tape(a.inputs[0]).src, pending);
        bool outScalar =
            !a.outputs.empty() &&
            consumerIsScalar(g, g.tape(a.outputs[0]).dst, pending);

        BoundaryModes modes = chooseBoundaryModes(
            *a.def, opts.machine, opts.enablePermutedTapes,
            opts.enableSagu, inScalar, outScalar);

        const int origPop = a.def->pop;
        const int origPush = a.def->push;
        const double scalarEst =
            sw * estimateFiringCycles(*a.def, opts.machine);
        SimdizeOutcome outcome = singleActorSimdize(*a.def, sw, modes);

        if (outcome.inMode == TapeMode::SaguVector) {
            auto& t = g.tapes.at(a.inputs[0]);
            t.transpose.writeSide = true;
            t.transpose.rate = origPop;
            t.transpose.simdWidth = sw;
        }
        if (outcome.outMode == TapeMode::SaguVector) {
            auto& t = g.tapes.at(a.outputs[0]);
            t.transpose.readSide = true;
            t.transpose.rate = origPush;
            t.transpose.simdWidth = sw;
        }

        report::ActorDecision d;
        d.actor = a.def->name;
        d.kind = report::TransformKind::SingleActor;
        d.accepted = true;
        d.reason = outcome.note;
        d.lanes = sw;
        d.cost.scalarCycles = scalarEst;
        d.cost.simdCycles = estimateSimdizedCycles(
            *a.def, opts.machine, outcome.inMode, outcome.outMode);
        d.inMode = toReportMode(outcome.inMode);
        d.outMode = toReportMode(outcome.outMode);
        rep.decisions.push_back(std::move(d));
        a.def = outcome.def;
        a.name = outcome.def->name;
    }
}

} // namespace macross::vectorizer
