/**
 * @file
 * Tape optimization + single-actor emission over the flat graph (the
 * Tape-Optimization phase of Algorithm 1).
 *
 * Boundary modes need neighbor knowledge (the SAGU layout is only
 * legal when the other tape endpoint stays scalar), so actors marked
 * for SIMDization by the hierarchy passes are emitted here, after
 * flattening, when producers and consumers are known.
 */
#pragma once

#include <unordered_set>

#include "vectorizer/pipeline.h"

namespace macross::vectorizer {

/**
 * SIMDize every filter actor of @p g whose definition is in
 * @p pending, choosing the cheapest legal boundary mode per side and
 * annotating tapes with the SAGU transpose layout where used. Each
 * emitted actor appends a SingleActor decision (boundary modes, cost
 * estimates, downgrade notes) to @p rep.
 */
void simdizePendingActors(
    graph::FlatGraph& g,
    const std::unordered_set<const graph::FilterDef*>& pending,
    const SimdizeOptions& opts, report::CompilationReport& rep);

} // namespace macross::vectorizer
