/**
 * @file
 * Vertical fusion implementation.
 */
#include "vectorizer/vertical.h"

#include "ir/analysis.h"
#include "ir/clone.h"
#include "support/diagnostics.h"
#include "support/math_util.h"
#include "vectorizer/simdizable.h"
#include "vectorizer/single_actor.h"

namespace macross::vectorizer {

using graph::FilterDef;
using graph::FilterDefPtr;
using ir::BlockBuilder;
using ir::ExprKind;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtKind;
using ir::StmtPtr;
using ir::VarPtr;

namespace {

VarPtr
makeLocal(const std::string& name, ir::Type t, int array_size = 0)
{
    auto v = std::make_shared<ir::Var>();
    v->name = name;
    v->type = t;
    v->arraySize = array_size;
    v->kind = ir::VarKind::Local;
    return v;
}

/** Fresh copies of every variable a definition touches. */
ir::VarMap
freshVarsFor(const FilterDef& def, const std::string& suffix,
             std::vector<VarPtr>& state_out)
{
    ir::VarMap map;
    auto freshen = [&](const VarPtr& v) {
        auto nv = std::make_shared<ir::Var>(*v);
        nv->name = v->name + suffix;
        map.set(v, nv);
        return nv;
    };
    for (const auto& sv : def.stateVars)
        state_out.push_back(freshen(sv));
    std::unordered_set<const ir::Var*> seen;
    auto visit = [&](const VarPtr& v) {
        if (!v || seen.count(v.get()) || map.contains(v.get()))
            return;
        seen.insert(v.get());
        if (v->kind == ir::VarKind::Local)
            freshen(v);
    };
    auto scan = [&](const std::vector<StmtPtr>& ss) {
        ir::forEachStmt(ss, [&](const Stmt& s) { visit(s.var); });
        ir::forEachExpr(ss, [&](const ir::Expr& e) { visit(e.var); });
    };
    scan(def.work);
    scan(def.init);
    return map;
}

} // namespace

std::vector<std::int64_t>
innerRepetitions(const std::vector<FilterDefPtr>& defs)
{
    // Rational chain: r[i+1] = r[i] * push[i] / pop[i+1], scaled to
    // the minimal integer vector.
    std::vector<Rational> rate(defs.size());
    rate[0] = Rational::fromInt(1);
    for (std::size_t i = 1; i < defs.size(); ++i) {
        fatalIf(defs[i]->pop == 0 || defs[i - 1]->push == 0,
                "fusion chain has a zero interior rate");
        rate[i] = rate[i - 1] *
                  Rational(defs[i - 1]->push, defs[i]->pop);
    }
    std::int64_t den = 1;
    for (const auto& r : rate)
        den = lcm64(den, r.den());
    std::vector<std::int64_t> reps(defs.size());
    std::int64_t g = 0;
    for (std::size_t i = 0; i < defs.size(); ++i) {
        reps[i] = rate[i].num() * (den / rate[i].den());
        g = gcd64(g, reps[i]);
    }
    for (auto& r : reps)
        r /= g;
    return reps;
}

FilterDefPtr
fuseVertically(const std::vector<FilterDefPtr>& defs)
{
    fatalIf(defs.size() < 2, "vertical fusion needs >= 2 actors");
    for (std::size_t i = 0; i < defs.size(); ++i) {
        SimdizableVerdict v = isVerticallyFusable(*defs[i], i == 0);
        fatalIf(!v.ok, "actor ", defs[i]->name,
                " cannot be vertically fused: ", v.reason);
    }
    std::vector<std::int64_t> reps = innerRepetitions(defs);

    auto fused = std::make_shared<FilterDef>();
    fused->inElem = defs.front()->inElem;
    fused->outElem = defs.back()->outElem;
    fused->pop = static_cast<int>(reps.front() * defs.front()->pop);
    fused->peek = static_cast<int>((reps.front() - 1) * defs.front()->pop +
                                   defs.front()->peek);
    fused->push = static_cast<int>(reps.back() * defs.back()->push);

    std::string name;
    for (std::size_t i = 0; i < defs.size(); ++i) {
        if (i)
            name += "_";
        name += std::to_string(reps[i]) + defs[i]->name;
        fused->fusedFrom.push_back(defs[i]->name);
    }
    fused->name = name;

    BlockBuilder work;
    BlockBuilder init;

    // Internal buffers between consecutive inner actors, plus their
    // read/write counters (re-zeroed every coarse firing).
    std::vector<VarPtr> buf(defs.size() - 1);
    std::vector<VarPtr> wcnt(defs.size() - 1), rcnt(defs.size() - 1);
    for (std::size_t i = 0; i + 1 < defs.size(); ++i) {
        int size = static_cast<int>(reps[i] * defs[i]->push);
        buf[i] = makeLocal("_buf" + std::to_string(i),
                           defs[i]->outElem, size);
        wcnt[i] = makeLocal("_w" + std::to_string(i), ir::kInt32);
        rcnt[i] = makeLocal("_r" + std::to_string(i), ir::kInt32);
        work.assign(wcnt[i], ir::intImm(0));
        work.assign(rcnt[i], ir::intImm(0));
    }

    for (std::size_t i = 0; i < defs.size(); ++i) {
        // Interior pops read as buffer loads, so they must appear as
        // full right-hand sides: normalize first.
        FilterDefPtr prepared = normalizeTapeReads(*defs[i]);
        std::vector<VarPtr> stateCopies;
        ir::VarMap map =
            freshVarsFor(*prepared, "_" + std::to_string(i),
                         stateCopies);
        for (auto& sv : stateCopies)
            fused->stateVars.push_back(sv);

        const bool first = i == 0;
        const bool last = i + 1 == defs.size();
        VarPtr inBuf = first ? nullptr : buf[i - 1];
        VarPtr inCnt = first ? nullptr : rcnt[i - 1];
        VarPtr outBuf = last ? nullptr : buf[i];
        VarPtr outCnt = last ? nullptr : wcnt[i];

        ir::Rewriter rw;
        rw.varMap = map;
        rw.stmtHook = [&](const Stmt& s, BlockBuilder& out,
                          ir::Rewriter& self) -> bool {
            if (!first && s.kind == StmtKind::Assign &&
                s.a->kind == ExprKind::Peek) {
                panic("interior actor ", defs[i]->name,
                      " peeks; eligibility should have rejected it");
            }
            if (!first && s.kind == StmtKind::Assign &&
                s.a->kind == ExprKind::Pop) {
                VarPtr dst = self.varMap.lookup(s.var);
                out.assign(dst, ir::load(inBuf, ir::varRef(inCnt)));
                out.assign(inCnt, ir::varRef(inCnt) + ir::intImm(1));
                return true;
            }
            if (!last && s.kind == StmtKind::Push) {
                out.store(outBuf, ir::varRef(outCnt),
                          self.rewrite(s.a));
                out.assign(outCnt, ir::varRef(outCnt) + ir::intImm(1));
                return true;
            }
            return false;
        };

        std::vector<StmtPtr> bodyOnce = rw.rewrite(prepared->work);
        if (reps[i] == 1) {
            work.appendAll(bodyOnce);
        } else {
            VarPtr wc = makeLocal("_wc" + std::to_string(i),
                                  ir::kInt32);
            work.forLoop(wc, 0, reps[i], [&](BlockBuilder& b) {
                b.appendAll(bodyOnce);
            });
        }

        ir::Rewriter initRw;
        initRw.varMap = map;
        init.appendAll(initRw.rewrite(prepared->init));
    }

    fused->work = work.take();
    fused->init = init.take();
    graph::validateFilter(*fused);
    return fused;
}

} // namespace macross::vectorizer
