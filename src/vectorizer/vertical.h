/**
 * @file
 * Vertical fusion (Section 3.2): collapse a pipeline of SIMDizable
 * actors into one coarse actor whose inner actors communicate through
 * internal buffers.
 *
 * The inner repetition counts are the minimal integer solution of the
 * chain's balance equations (e.g. D:push2 -> E:pop3 gives 3 D's and 2
 * E's — the paper's 3D_2E). Pushes of interior actors become stores
 * into a local buffer array and interior pops become loads; after the
 * coarse actor is single-actor SIMDized those buffers are marked
 * vector, which is precisely the paper's vector communication between
 * inner actors (Figures 4-5): packing/unpacking survives only at the
 * coarse actor's own tape boundaries.
 */
#pragma once

#include <vector>

#include "graph/filter.h"

namespace macross::vectorizer {

/**
 * Fuse a chain of filter definitions (upstream first). Every def must
 * satisfy isVerticallyFusable (first may peek). The result is a plain
 * (not yet SIMDized) coarse definition.
 */
graph::FilterDefPtr
fuseVertically(const std::vector<graph::FilterDefPtr>& defs);

/** Minimal inner repetition counts for the chain. */
std::vector<std::int64_t>
innerRepetitions(const std::vector<graph::FilterDefPtr>& defs);

} // namespace macross::vectorizer
