/**
 * @file
 * Tests for the modeled GCC/ICC auto-vectorizers: decision coverage
 * and the paper's expected ordering (macro-SIMD > ICC > GCC > scalar
 * on vectorizable workloads; semantics always bit-exact).
 */
#include "autovec/gcc_like.h"
#include "autovec/icc_like.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "lowering/lowered.h"

namespace macross::autovec {
namespace {

double
cyclesWith(const vectorizer::CompiledProgram& p,
           const machine::MachineDesc& m, bool gcc, bool icc)
{
    lowering::LoweredProgram lp = lowering::lower(p.graph, p.schedule);
    machine::CostSink cost(m);
    interp::Runner r(p.graph, p.schedule, &cost);
    if (gcc) {
        for (auto& [id, cfg] : gccAutovectorize(lp, m).configs)
            r.setActorConfig(id, cfg);
    }
    if (icc) {
        for (auto& [id, cfg] : iccAutovectorize(lp, m).configs)
            r.setActorConfig(id, cfg);
    }
    r.runInit();
    std::size_t before = r.captured().size();
    r.runSteady(10);
    std::size_t produced = r.captured().size() - before;
    EXPECT_GT(produced, 0u);
    return cost.totalCycles() / static_cast<double>(produced);
}

TEST(Autovec, GccVectorizesPureArrayLoopsOnly)
{
    machine::MachineDesc m = machine::coreI7();
    // DCT's inner loops run over plain local arrays: GCC handles them.
    auto dct = vectorizer::compileScalar(benchmarks::makeDct());
    auto dctLp = lowering::lower(dct.graph, dct.schedule);
    AutovecResult r = gccAutovectorize(dctLp, m);
    EXPECT_GT(r.loopsVectorized, 0);
    EXPECT_EQ(r.actorsOuterVectorized, 0);  // GCC model: inner only.

    // FMRadio's FIR loops read the tape through circular buffers:
    // the GCC model rejects them, the ICC model vectorizes them.
    auto fm = vectorizer::compileScalar(benchmarks::makeFmRadio());
    auto fmLp = lowering::lower(fm.graph, fm.schedule);
    EXPECT_EQ(gccAutovectorize(fmLp, m).loopsVectorized, 0);
    EXPECT_GT(iccAutovectorize(fmLp, m).loopsVectorized, 0);
}

TEST(Autovec, IccAddsOuterLoopVectorization)
{
    // Outer-loop vectorization needs a repetition count >= the SIMD
    // width; MatrixMult's pass-through branch repeats 9x per steady
    // state and has no inner loops, so the ICC model (and only it)
    // vectorizes its firing loop.
    auto p = vectorizer::compileScalar(benchmarks::makeMatrixMult());
    lowering::LoweredProgram lp = lowering::lower(p.graph, p.schedule);
    machine::MachineDesc m = machine::coreI7();
    AutovecResult gcc = gccAutovectorize(lp, m);
    AutovecResult icc = iccAutovectorize(lp, m);
    EXPECT_GE(icc.loopsVectorized + icc.actorsOuterVectorized,
              gcc.loopsVectorized);
    EXPECT_GT(icc.actorsOuterVectorized, 0);
    EXPECT_EQ(gcc.actorsOuterVectorized, 0);
}

TEST(Autovec, SpeedupOrderingOnSuite)
{
    machine::MachineDesc m = machine::coreI7();
    double scalarSum = 0, gccSum = 0, iccSum = 0;
    for (const auto& b : benchmarks::standardSuite()) {
        SCOPED_TRACE(b.name);
        auto p = vectorizer::compileScalar(b.program);
        double scalar = cyclesWith(p, m, false, false);
        double gcc = cyclesWith(p, m, true, false);
        double icc = cyclesWith(p, m, false, true);
        // Modeled compilers can only reduce cycles.
        EXPECT_LE(gcc, scalar * 1.0001);
        EXPECT_LE(icc, scalar * 1.0001);
        scalarSum += scalar;
        gccSum += gcc;
        iccSum += icc;
    }
    // Aggregate: ICC is the stronger traditional vectorizer.
    EXPECT_LT(iccSum, scalarSum);
    EXPECT_LE(iccSum, gccSum * 1.0001);
}

TEST(Autovec, ModelsNeverChangeSemantics)
{
    // Cost plans do not alter data flow: captured streams with and
    // without autovec configs must be identical.
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    lowering::LoweredProgram lp = lowering::lower(p.graph, p.schedule);

    interp::Runner plain(p.graph, p.schedule);
    plain.runUntilCaptured(128);

    machine::CostSink cost(m);
    interp::Runner modeled(p.graph, p.schedule, &cost);
    for (auto& [id, cfg] : iccAutovectorize(lp, m).configs)
        modeled.setActorConfig(id, cfg);
    modeled.runUntilCaptured(128);

    for (int i = 0; i < 128; ++i)
        ASSERT_EQ(plain.captured()[i], modeled.captured()[i]);
}

TEST(Autovec, SkipsAlreadyVectorizedActors)
{
    vectorizer::SimdizeOptions o;
    o.forceSimdize = true;
    auto p = vectorizer::macroSimdize(benchmarks::makeDct(), o);
    lowering::LoweredProgram lp = lowering::lower(p.graph, p.schedule);
    machine::MachineDesc m = machine::coreI7();
    AutovecResult r = iccAutovectorize(lp, m);
    for (const auto& [id, cfg] : r.configs) {
        const auto& a = p.graph.actor(id);
        EXPECT_EQ(a.def->vectorLanes, 1)
            << "autovec touched intrinsics actor " << a.def->name;
        (void)cfg;
    }
}

} // namespace
} // namespace macross::autovec
