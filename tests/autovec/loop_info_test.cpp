/**
 * @file
 * Unit tests for the auto-vectorizer loop analysis.
 */
#include "autovec/loop_info.h"

#include <gtest/gtest.h>

namespace macross::autovec {
namespace {

using namespace ir;

VarPtr
makeVar(const std::string& name, Type t, int arr = 0)
{
    auto v = std::make_shared<Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    return v;
}

TEST(AffineCoeff, RecognizesAffineForms)
{
    auto i = makeVar("i", kInt32);
    auto n = makeVar("n", kInt32);
    EXPECT_EQ(affineCoeff(varRef(i), i.get()), 1);
    EXPECT_EQ(affineCoeff(intImm(7), i.get()), 0);
    EXPECT_EQ(affineCoeff(varRef(i) * intImm(3) + intImm(2), i.get()),
              3);
    EXPECT_EQ(affineCoeff(intImm(2) * varRef(i) - varRef(i), i.get()),
              1);
    EXPECT_EQ(affineCoeff(varRef(n) + intImm(1), i.get()), 0);
    // Non-affine: i*i, i*n (unknown multiplier), i << 1.
    EXPECT_FALSE(affineCoeff(varRef(i) * varRef(i), i.get()));
    EXPECT_FALSE(affineCoeff(varRef(i) * varRef(n), i.get()));
    EXPECT_FALSE(affineCoeff(binary(BinaryOp::Shl, varRef(i), intImm(1)),
                             i.get()));
}

StmtPtr
loopOf(const VarPtr& iv, std::int64_t trips,
       const std::function<void(BlockBuilder&)>& fill)
{
    BlockBuilder b;
    b.forLoop(iv, 0, trips, fill);
    return b.take()[0];
}

TEST(LoopInfo, UnitStrideReductionLoop)
{
    auto i = makeVar("i", kInt32);
    auto sum = makeVar("sum", kFloat32);
    auto coeff = makeVar("coeff", kFloat32, 16);
    auto loop = loopOf(i, 16, [&](BlockBuilder& b) {
        b.assign(sum,
                 varRef(sum) + peekExpr(kFloat32, varRef(i)) *
                                   load(coeff, varRef(i)));
    });
    LoopAnalysis a = analyzeLoop(*loop);
    EXPECT_TRUE(a.counted);
    EXPECT_EQ(a.trips, 16);
    EXPECT_TRUE(a.innermost);
    EXPECT_TRUE(a.hasReduction);
    EXPECT_FALSE(a.hasCrossIterDep);
    EXPECT_EQ(a.arrayAccess, AccessClass::Unit);
    EXPECT_EQ(a.peekAccess, AccessClass::Unit);
}

TEST(LoopInfo, StridedPeekDetected)
{
    auto i = makeVar("i", kInt32);
    auto x = makeVar("x", kFloat32);
    auto loop = loopOf(i, 8, [&](BlockBuilder& b) {
        b.assign(x, peekExpr(kFloat32, varRef(i) * intImm(2)));
        b.push(varRef(x));
    });
    LoopAnalysis a = analyzeLoop(*loop);
    EXPECT_EQ(a.peekAccess, AccessClass::Strided);
    EXPECT_TRUE(a.hasPush);
    EXPECT_GT(a.stridedAccessesPerIter, 0);
}

TEST(LoopInfo, GatherFromVariantSubscript)
{
    auto i = makeVar("i", kInt32);
    auto idx = makeVar("idx", kInt32);
    auto table = makeVar("table", kFloat32, 64);
    auto loop = loopOf(i, 8, [&](BlockBuilder& b) {
        b.assign(idx, binary(BinaryOp::And, varRef(i) * varRef(i),
                             intImm(63)));
        b.push(load(table, varRef(idx)));
    });
    LoopAnalysis a = analyzeLoop(*loop);
    EXPECT_EQ(a.arrayAccess, AccessClass::Gather);
}

TEST(LoopInfo, CrossIterationDependence)
{
    auto i = makeVar("i", kInt32);
    auto prev = makeVar("prev", kFloat32);
    auto x = makeVar("x", kFloat32);
    auto loop = loopOf(i, 8, [&](BlockBuilder& b) {
        b.assign(x, popExpr(kFloat32));
        b.push(varRef(x) - varRef(prev));  // reads last iteration's
        b.assign(prev, varRef(x));
    });
    LoopAnalysis a = analyzeLoop(*loop);
    EXPECT_TRUE(a.hasCrossIterDep);
}

TEST(LoopInfo, CallAndDivFlags)
{
    auto i = makeVar("i", kInt32);
    auto loop = loopOf(i, 8, [&](BlockBuilder& b) {
        b.push(call(Intrinsic::Sin,
                    {toFloat(varRef(i))}) +
               call(Intrinsic::Sqrt, {floatImm(2.0f)}));
    });
    LoopAnalysis a = analyzeLoop(*loop);
    EXPECT_TRUE(a.hasTrig);
    EXPECT_TRUE(a.hasSqrt);
    EXPECT_FALSE(a.hasIntDiv);

    auto loop2 = loopOf(i, 8, [&](BlockBuilder& b) {
        b.push(toFloat(varRef(i) % intImm(3)));
    });
    EXPECT_TRUE(analyzeLoop(*loop2).hasIntDiv);
}

TEST(LoopInfo, NestedLoopNotInnermost)
{
    auto i = makeVar("i", kInt32);
    auto j = makeVar("j", kInt32);
    auto x = makeVar("x", kFloat32);
    auto loop = loopOf(i, 4, [&](BlockBuilder& b) {
        b.forLoop(j, 0, 4, [&](BlockBuilder& b2) {
            b2.assign(x, floatImm(1.0f));
        });
    });
    EXPECT_FALSE(analyzeLoop(*loop).innermost);
}

} // namespace
} // namespace macross::autovec
