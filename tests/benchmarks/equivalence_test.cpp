/**
 * @file
 * The suite-wide correctness battery: every benchmark must produce a
 * bit-identical output stream under every SIMDization configuration.
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/suite.h"

namespace macross::benchmarks {
namespace {

struct Config {
    const char* name;
    bool vertical;
    bool horizontal;
    bool permuted;
    bool sagu;
};

class SuiteEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

const Config kConfigs[] = {
    {"single-actor-only", false, false, false, false},
    {"vertical", true, false, false, false},
    {"horizontal", false, true, false, false},
    {"full", true, true, true, false},
    {"full+sagu", true, true, true, true},
};

TEST_P(SuiteEquivalence, SimdizedOutputMatchesScalar)
{
    auto [benchIdx, cfgIdx] = GetParam();
    auto suite = standardSuite();
    ASSERT_LT(static_cast<std::size_t>(benchIdx), suite.size());
    const auto& bench = suite[benchIdx];
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE(bench.name + std::string(" / ") + cfg.name);

    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableVertical = cfg.vertical;
    opts.enableHorizontal = cfg.horizontal;
    opts.enablePermutedTapes = cfg.permuted;
    opts.enableSagu = cfg.sagu;
    if (cfg.sagu)
        opts.machine = machine::coreI7WithSagu();

    testutil::expectTransformPreservesOutput(bench.program, opts, 300);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, SuiteEquivalence,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = standardSuite();
        int b = std::get<0>(info.param);
        int c = std::get<1>(info.param);
        std::string n = suite[b].name + "_" + kConfigs[c].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

TEST(SuiteEquivalence, RunningExampleAllWidths)
{
    for (int width : {2, 4, 8}) {
        SCOPED_TRACE("width " + std::to_string(width));
        vectorizer::SimdizeOptions opts;
        opts.forceSimdize = true;
        opts.machine = machine::coreI7();
        opts.machine.simdWidth = width;
        testutil::expectTransformPreservesOutput(makeRunningExample(),
                                                 opts, 256);
    }
}

} // namespace
} // namespace macross::benchmarks
