/**
 * @file
 * Property-based tests: randomly generated stream programs must
 * survive the full transform battery bit-exactly, and their schedules
 * must stay rate-matched.
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/random_graph.h"

namespace macross::benchmarks {
namespace {

class RandomPrograms : public ::testing::TestWithParam<int> {};

TEST_P(RandomPrograms, FullSimdizationPreservesOutput)
{
    std::uint64_t seed = 1000 + GetParam();
    auto program = randomProgram(seed);
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    SCOPED_TRACE("seed " + std::to_string(seed));
    testutil::expectTransformPreservesOutput(program, opts, 160);
}

TEST_P(RandomPrograms, SaguConfigPreservesOutput)
{
    std::uint64_t seed = 2000 + GetParam();
    auto program = randomProgram(seed);
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = true;
    opts.machine = machine::coreI7WithSagu();
    SCOPED_TRACE("seed " + std::to_string(seed));
    testutil::expectTransformPreservesOutput(program, opts, 160);
}

TEST_P(RandomPrograms, SchedulesStayRateMatched)
{
    std::uint64_t seed = 3000 + GetParam();
    auto program = randomProgram(seed);
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    auto compiled = vectorizer::macroSimdize(program, opts);
    schedule::checkRateMatched(compiled.graph, compiled.schedule);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(0, 25));

TEST(RandomPrograms, StatelessOnlyProgramsVectorizeDeeply)
{
    RandomGraphOptions opts;
    opts.allowStateful = false;
    opts.allowPeeking = false;
    opts.allowSplitJoin = false;
    int vectorizedSomething = 0;
    for (int s = 0; s < 10; ++s) {
        auto program = randomProgram(4000 + s, opts);
        vectorizer::SimdizeOptions so;
        so.forceSimdize = true;
        auto compiled = vectorizer::macroSimdize(program, so);
        for (const auto& a : compiled.graph.actors) {
            if (a.isFilter() && a.def->vectorLanes > 1) {
                ++vectorizedSomething;
                break;
            }
        }
        testutil::expectTransformPreservesOutput(program, so, 120);
    }
    // Every stateless pipeline must have at least one vector actor.
    EXPECT_EQ(vectorizedSomething, 10);
}

TEST(RandomPrograms, WiderMachinesAlsoPreserveOutput)
{
    for (int s = 0; s < 6; ++s) {
        auto program = randomProgram(5000 + s);
        vectorizer::SimdizeOptions opts;
        opts.forceSimdize = true;
        opts.machine = machine::wide8();
        SCOPED_TRACE("seed " + std::to_string(5000 + s));
        testutil::expectTransformPreservesOutput(program, opts, 120);
    }
}

} // namespace
} // namespace macross::benchmarks
