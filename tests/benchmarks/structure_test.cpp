/**
 * @file
 * Structural expectations per benchmark: each must exercise the
 * transform mix the paper attributes to it (Section 5).
 */
#include <gtest/gtest.h>

#include "benchmarks/suite.h"
#include "vectorizer/pipeline.h"

namespace macross::benchmarks {
namespace {

struct TransformStats {
    int horizontal = 0;  ///< HSplitter/HJoiner pairs.
    int fused = 0;       ///< Vertically fused actors.
    int vectorized = 0;  ///< Actors with vectorLanes > 1.
    int scalar = 0;      ///< Filter actors left scalar.
};

TransformStats
statsFor(const graph::StreamPtr& program, bool sagu = false)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = sagu;
    if (sagu)
        opts.machine = machine::coreI7WithSagu();
    auto compiled = vectorizer::macroSimdize(program, opts);
    TransformStats s;
    for (const auto& a : compiled.graph.actors) {
        if (a.kind == graph::ActorKind::Splitter && a.horizontal)
            s.horizontal++;
        if (!a.isFilter())
            continue;
        if (!a.def->fusedFrom.empty())
            s.fused++;
        if (a.def->vectorLanes > 1)
            s.vectorized++;
        else
            s.scalar++;
    }
    return s;
}

TEST(Structure, FilterBankIsHorizontal)
{
    TransformStats s = statsFor(makeFilterBank());
    EXPECT_GE(s.horizontal, 1);
    EXPECT_EQ(s.fused, 0);
}

TEST(Structure, BeamFormerIsHorizontal)
{
    TransformStats s = statsFor(makeBeamFormer());
    EXPECT_GE(s.horizontal, 2);  // both split-joins
}

TEST(Structure, ChannelVocoderIsHorizontal)
{
    TransformStats s = statsFor(makeChannelVocoder());
    EXPECT_GE(s.horizontal, 1);
}

TEST(Structure, MatrixMultBlockFusesTheWholeChain)
{
    TransformStats s = statsFor(makeMatrixMultBlock());
    EXPECT_GE(s.fused, 1);
    auto compiled = vectorizer::macroSimdize(
        makeMatrixMultBlock(), [] {
            vectorizer::SimdizeOptions o;
            o.forceSimdize = true;
            return o;
        }());
    for (const auto& a : compiled.graph.actors) {
        if (a.isFilter() && !a.def->fusedFrom.empty()) {
            // All six interior stages collapse into one actor.
            EXPECT_EQ(a.def->fusedFrom.size(), 6u);
        }
    }
}

TEST(Structure, FftAndTdeAndBitonicFuse)
{
    EXPECT_GE(statsFor(makeFft()).fused, 1);
    EXPECT_GE(statsFor(makeTde()).fused, 1);
    EXPECT_GE(statsFor(makeBitonicSort()).fused, 1);
}

TEST(Structure, FmRadioAndAudioBeamHaveNoFusion)
{
    EXPECT_EQ(statsFor(makeFmRadio()).fused, 0);
    EXPECT_EQ(statsFor(makeAudioBeam()).fused, 0);
}

TEST(Structure, AudioBeamStillVectorizesSomething)
{
    TransformStats s = statsFor(makeAudioBeam());
    EXPECT_GE(s.vectorized, 1);
    EXPECT_GE(s.scalar, 2);  // stateful actors stay scalar
}

TEST(Structure, RunningExampleUsesAllThree)
{
    TransformStats s = statsFor(makeRunningExample());
    EXPECT_GE(s.horizontal, 1);
    EXPECT_GE(s.fused, 1);
    EXPECT_GE(s.vectorized, 2);
    EXPECT_GE(s.scalar, 3);  // A, F, H stay scalar
}

TEST(Structure, SaguAnnotatesBoundariesOnMatrixMult)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = true;
    opts.machine = machine::coreI7WithSagu();
    auto compiled = vectorizer::macroSimdize(makeMatrixMult(), opts);
    int transposed = 0;
    for (const auto& t : compiled.graph.tapes) {
        transposed +=
            t.transpose.readSide || t.transpose.writeSide;
    }
    EXPECT_GE(transposed, 1);
}

TEST(Structure, DctUsesPermutedBoundariesWithoutSagu)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    auto compiled = vectorizer::macroSimdize(makeDct(), opts);
    bool sawPermuted = false;
    for (const auto& d : compiled.report.decisions) {
        if (d.kind == report::TransformKind::SingleActor &&
            (d.inMode == report::TapeAccess::PermutedVector ||
             d.outMode == report::TapeAccess::PermutedVector)) {
            sawPermuted = true;
        }
    }
    EXPECT_TRUE(sawPermuted);
}

} // namespace
} // namespace macross::benchmarks
