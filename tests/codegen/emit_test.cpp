/**
 * @file
 * Code-generation tests: structural checks on the emitted C++, plus
 * an end-to-end test that compiles the emitted translation unit with
 * the host compiler and compares its output against the interpreter.
 */
#include "codegen/emit_cpp.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "frontend/parser.h"

namespace macross::codegen {
namespace {

TEST(Codegen, EmitsVectorIntrinsicsForSimdizedGraph)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    auto compiled =
        vectorizer::macroSimdize(benchmarks::makeRunningExample(),
                                 opts);
    std::string src = emitCpp(compiled.graph, compiled.schedule);
    EXPECT_NE(src.find("Vec<float, 4>"), std::string::npos);
    EXPECT_NE(src.find("vpush"), std::string::npos);
    EXPECT_NE(src.find("rpush"), std::string::npos);
    EXPECT_NE(src.find("advance_in"), std::string::npos);
    EXPECT_NE(src.find("int main"), std::string::npos);
}

TEST(Codegen, SimdSpecSelectsTheVectorLayer)
{
    vectorizer::SimdizeOptions vopts;
    vopts.forceSimdize = true;
    auto compiled = vectorizer::macroSimdize(
        benchmarks::makeRunningExample(), vopts);

    // Default spec (W=4): the true-SIMD layer, built on the
    // compiler's vector extensions, chunked at kLaneWidth.
    EmitOptions w4;
    ASSERT_EQ(w4.simd.laneWidth, 4);
    std::string simd =
        emitCpp(compiled.graph, compiled.schedule, w4);
    EXPECT_NE(simd.find("SIMD lowering: w4:auto:exact"),
              std::string::npos);
    EXPECT_NE(simd.find("kLaneWidth = 4"), std::string::npos);
    EXPECT_NE(simd.find("ext_vector_type"), std::string::npos);
    EXPECT_NE(simd.find("vector_size"), std::string::npos);

    // W=1: the scalar fallback layer — no vector extensions at all,
    // same Vec/Tape interface.
    EmitOptions w1;
    w1.simd.laneWidth = 1;
    std::string scalar =
        emitCpp(compiled.graph, compiled.schedule, w1);
    EXPECT_NE(scalar.find("SIMD lowering: w1:auto:exact"),
              std::string::npos);
    EXPECT_EQ(scalar.find("ext_vector_type"), std::string::npos);
    EXPECT_EQ(scalar.find("vector_size"), std::string::npos);
    EXPECT_NE(scalar.find("Vec<float, 4>"), std::string::npos);

    // The actor bodies are lowering-independent: only the preamble's
    // Vec/Tape layer changes between specs.
    EXPECT_NE(simd, scalar);
}

TEST(Codegen, InvalidSimdSpecIsRejected)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeRunningExample());
    EmitOptions opts;
    opts.simd.laneWidth = 3;
    EXPECT_THROW(emitCpp(compiled.graph, compiled.schedule, opts),
                 PanicError);
    opts.simd.laneWidth = 4;
    opts.simd.isa = "native; rm -rf /";
    EXPECT_THROW(emitCpp(compiled.graph, compiled.schedule, opts),
                 PanicError);
}

TEST(Codegen, EmitsScalarGraphWithoutVectors)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeMatrixMultBlock());
    std::string src = emitCpp(compiled.graph, compiled.schedule);
    // No vector tape accesses outside the runtime preamble.
    EXPECT_EQ(src.find("->vpush("), std::string::npos);
    EXPECT_EQ(src.find(".vpush("), std::string::npos);
    EXPECT_NE(src.find("struct Actor0"), std::string::npos);
}

TEST(Codegen, EmitOptionsControlMainDefaults)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeRunningExample());
    EmitOptions opts;
    opts.steadyIterations = 77;
    opts.printFirst = 9;
    std::string src =
        emitCpp(compiled.graph, compiled.schedule, opts);
    // The CLI's --run N / --emit-print K land verbatim in main(),
    // argv[1] overriding the baked default via validated strtol
    // (junk counts exit with a usage message, never atoi-to-0).
    EXPECT_NE(src.find("long iters = 77;"), std::string::npos);
    EXPECT_NE(src.find("std::strtol(argv[1]"), std::string::npos);
    EXPECT_NE(src.find("usage: %s [ITERATIONS]"), std::string::npos);
    EXPECT_EQ(src.find("std::atoi"), std::string::npos);
    EXPECT_NE(src.find("i < rec.size() && i < 9"), std::string::npos);
}

TEST(Codegen, LibraryModeEmitsAbiInsteadOfMain)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeRunningExample());
    EmitOptions opts;
    opts.mode = EmitMode::Library;
    std::string src =
        emitCpp(compiled.graph, compiled.schedule, opts);
    EXPECT_EQ(src.find("int main"), std::string::npos);
    EXPECT_NE(src.find("extern \"C\""), std::string::npos);
    for (const char* sym :
         {"macross_abi_version", "macross_simd_lanes",
          "macross_simd_isa", "macross_exact", "macross_create",
          "macross_destroy", "macross_init", "macross_run_steady",
          "macross_capture_size", "macross_capture_data"}) {
        EXPECT_NE(src.find(sym), std::string::npos)
            << "missing ABI symbol " << sym;
    }
    // The introspection symbols report the spec this object was
    // emitted under.
    EXPECT_NE(src.find("int macross_abi_version() { return 3; }"),
              std::string::npos);
    EXPECT_NE(src.find("int macross_simd_lanes() { return 4; }"),
              std::string::npos);
    EXPECT_NE(src.find("return \"auto\""), std::string::npos);
    EXPECT_NE(src.find("int macross_exact() { return 1; }"),
              std::string::npos);

    EmitOptions ulp = opts;
    ulp.simd.allowUlpDivergence = true;
    std::string inexact =
        emitCpp(compiled.graph, compiled.schedule, ulp);
    EXPECT_NE(inexact.find("int macross_exact() { return 0; }"),
              std::string::npos);
}

/** Compile @p source with the host compiler and run it. */
std::string
compileAndRun(const std::string& source, const std::string& tag,
              int iters)
{
    std::string base = ::testing::TempDir() + "macross_emit_" + tag;
    std::string cppPath = base + ".cpp";
    std::string binPath = base + ".bin";
    {
        std::ofstream out(cppPath);
        out << source;
    }
    std::string compile = "c++ -std=c++17 -O1 -o " + binPath + " " +
                          cppPath + " 2> " + base + ".log";
    if (std::system(compile.c_str()) != 0) {
        std::ifstream log(base + ".log");
        std::string msg((std::istreambuf_iterator<char>(log)),
                        std::istreambuf_iterator<char>());
        ADD_FAILURE() << "host compile failed:\n" << msg;
        return {};
    }
    std::string cmd = binPath + " " + std::to_string(iters);
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    char buf[256];
    while (fgets(buf, sizeof(buf), pipe))
        output += buf;
    pclose(pipe);
    return output;
}

/** First line of the emitted program's report: element count +
 * checksum, which must match the interpreter's capture. */
void
expectEmittedMatchesInterpreter(const graph::StreamPtr& program,
                                bool simdize, const std::string& tag)
{
    vectorizer::CompiledProgram compiled;
    if (simdize) {
        vectorizer::SimdizeOptions opts;
        opts.forceSimdize = true;
        compiled = vectorizer::macroSimdize(program, opts);
    } else {
        compiled = vectorizer::compileScalar(program);
    }
    const int iters = 3;
    std::string output = compileAndRun(
        emitCpp(compiled.graph, compiled.schedule), tag, iters);
    ASSERT_FALSE(output.empty());

    // Interpreter reference: same order-independent sum of raw lane
    // bits the emitted main() prints.
    interp::Runner r(compiled.graph, compiled.schedule);
    r.runInit();
    r.runSteady(iters);
    unsigned long long checksum = 0;
    for (const auto& v : r.captured())
        checksum += v.rawBits(0);

    char expected[128];
    std::snprintf(expected, sizeof(expected),
                  "elements %zu checksum %016llx",
                  r.captured().size(), checksum);
    EXPECT_EQ(output.substr(0, output.find('\n')),
              std::string(expected));
}

TEST(Codegen, EmittedScalarProgramMatchesInterpreter)
{
    expectEmittedMatchesInterpreter(
        benchmarks::makeRunningExample(), false, "scalar");
}

TEST(Codegen, EmittedSimdizedProgramMatchesInterpreter)
{
    expectEmittedMatchesInterpreter(
        benchmarks::makeRunningExample(), true, "simd");
}

TEST(Codegen, EmittedDctWithPermutedTapesMatches)
{
    expectEmittedMatchesInterpreter(benchmarks::makeDct(), true,
                                    "dct");
}

TEST(Codegen, EmittedBitonicIntProgramMatches)
{
    expectEmittedMatchesInterpreter(benchmarks::makeBitonicSort(),
                                    true, "bitonic");
}

TEST(Codegen, EmittedHorizontalProgramMatches)
{
    expectEmittedMatchesInterpreter(benchmarks::makeFilterBank(),
                                    true, "filterbank");
}

TEST(Codegen, EmittedFusedChainMatches)
{
    expectEmittedMatchesInterpreter(benchmarks::makeMatrixMultBlock(),
                                    true, "mmb");
}

TEST(Codegen, EmittedSaguTransposedTapesMatch)
{
    // MatrixMult under the SAGU config: the emitted Tape must apply
    // the block-transpose walk on the scalar endpoints.
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = true;
    opts.machine = machine::coreI7WithSagu();
    auto compiled =
        vectorizer::macroSimdize(benchmarks::makeMatrixMult(), opts);
    bool transposed = false;
    for (const auto& t : compiled.graph.tapes) {
        transposed |= t.transpose.readSide || t.transpose.writeSide;
    }
    ASSERT_TRUE(transposed);

    const int iters = 3;
    std::string output = compileAndRun(
        emitCpp(compiled.graph, compiled.schedule), "sagu", iters);
    ASSERT_FALSE(output.empty());

    interp::Runner r(compiled.graph, compiled.schedule);
    r.runInit();
    r.runSteady(iters);
    unsigned long long checksum = 0;
    for (const auto& v : r.captured())
        checksum += v.rawBits(0);
    char expected[128];
    std::snprintf(expected, sizeof(expected),
                  "elements %zu checksum %016llx", r.captured().size(),
                  checksum);
    EXPECT_EQ(output.substr(0, output.find('\n')),
              std::string(expected));
}

TEST(Codegen, ScalarFallbackLayerMatchesInterpreter)
{
    // W=1 standalone build of a SIMDized program with permuted tapes:
    // the scalar fallback layer must stay bit-identical to the
    // interpreter even when the default lowering is the vector layer.
    vectorizer::SimdizeOptions vopts;
    vopts.forceSimdize = true;
    auto compiled =
        vectorizer::macroSimdize(benchmarks::makeDct(), vopts);
    EmitOptions opts;
    opts.simd.laneWidth = 1;
    const int iters = 3;
    std::string output = compileAndRun(
        emitCpp(compiled.graph, compiled.schedule, opts), "w1", iters);
    ASSERT_FALSE(output.empty());

    interp::Runner r(compiled.graph, compiled.schedule);
    r.runInit();
    r.runSteady(iters);
    unsigned long long checksum = 0;
    for (const auto& v : r.captured())
        checksum += v.rawBits(0);
    char expected[128];
    std::snprintf(expected, sizeof(expected),
                  "elements %zu checksum %016llx", r.captured().size(),
                  checksum);
    EXPECT_EQ(output.substr(0, output.find('\n')),
              std::string(expected));
}

TEST(Codegen, FullStackFromStreamLanguage)
{
    // The whole toolchain in one test: textual program -> parser ->
    // macro-SIMDization -> C++ emission -> host compiler -> output
    // identical to the interpreter.
    const char* src = R"(
void->float filter Src() {
    int s;
    init { s = 41; }
    work push 4 {
        for (int i = 0; i < 4; i++) {
            s = s * 1103515245 + 12345;
            push(float((s >> 16) & 32767) * 0.0005);
        }
    }
}
float->float filter Blend(float k) {
    work pop 2 push 2 {
        float a = pop();
        float b = pop();
        push(a * k + b * (1.0 - k));
        push(b * k - a * (1.0 - k));
    }
}
float->void filter Out() {
    float acc;
    work pop 1 { acc = acc + pop(); }
}
void->void pipeline Main() {
    add Src();
    add splitjoin {
        split roundrobin(2, 2, 2, 2);
        add Blend(0.25);
        add Blend(0.5);
        add Blend(0.75);
        add Blend(0.9);
        join roundrobin(2, 2, 2, 2);
    };
    add Out();
}
)";
    expectEmittedMatchesInterpreter(frontend::parseProgram(src), true,
                                    "dsl");
}

} // namespace
} // namespace macross::codegen
