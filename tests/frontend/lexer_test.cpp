/**
 * @file
 * Unit tests for the stream-language lexer.
 */
#include "frontend/lexer.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::frontend {
namespace {

TEST(Lexer, IdentifiersNumbersAndOperators)
{
    auto toks = tokenize("foo 42 3.5f 1e3 x->y i++ a==b c<=d e<<f");
    ASSERT_GE(toks.size(), 14u);
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "foo");
    EXPECT_EQ(toks[1].kind, Tok::IntLit);
    EXPECT_EQ(toks[1].ival, 42);
    EXPECT_EQ(toks[2].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[2].fval, 3.5f);
    EXPECT_EQ(toks[3].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[3].fval, 1000.0f);
    EXPECT_EQ(toks[5].kind, Tok::Arrow);
    EXPECT_EQ(toks[8].kind, Tok::PlusPlus);
    EXPECT_EQ(toks[10].kind, Tok::Op2);
    EXPECT_EQ(toks[10].text, "==");
}

TEST(Lexer, CommentsAreSkipped)
{
    auto toks = tokenize("a // line comment\nb /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u);  // a b c End
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
    EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, TracksLinesAndColumns)
{
    auto toks = tokenize("x\n  y");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].col, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, RejectsBadInput)
{
    EXPECT_THROW(tokenize("a $ b"), FatalError);
    EXPECT_THROW(tokenize("/* never closed"), FatalError);
}

TEST(Lexer, EndTokenAlwaysPresent)
{
    auto toks = tokenize("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::End);
}

} // namespace
} // namespace macross::frontend
