/**
 * @file
 * Unit tests for the stream-language lexer.
 */
#include "frontend/lexer.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::frontend {
namespace {

TEST(Lexer, IdentifiersNumbersAndOperators)
{
    auto toks = tokenize("foo 42 3.5f 1e3 x->y i++ a==b c<=d e<<f");
    ASSERT_GE(toks.size(), 14u);
    EXPECT_EQ(toks[0].kind, Tok::Ident);
    EXPECT_EQ(toks[0].text, "foo");
    EXPECT_EQ(toks[1].kind, Tok::IntLit);
    EXPECT_EQ(toks[1].ival, 42);
    EXPECT_EQ(toks[2].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[2].fval, 3.5f);
    EXPECT_EQ(toks[3].kind, Tok::FloatLit);
    EXPECT_FLOAT_EQ(toks[3].fval, 1000.0f);
    EXPECT_EQ(toks[5].kind, Tok::Arrow);
    EXPECT_EQ(toks[8].kind, Tok::PlusPlus);
    EXPECT_EQ(toks[10].kind, Tok::Op2);
    EXPECT_EQ(toks[10].text, "==");
}

TEST(Lexer, CommentsAreSkipped)
{
    auto toks = tokenize("a // line comment\nb /* block\n comment */ c");
    ASSERT_EQ(toks.size(), 4u);  // a b c End
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
    EXPECT_EQ(toks[2].text, "c");
    EXPECT_EQ(toks[1].line, 2);
}

TEST(Lexer, TracksLinesAndColumns)
{
    auto toks = tokenize("x\n  y");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].col, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].col, 3);
}

TEST(Lexer, RejectsBadInput)
{
    EXPECT_THROW(tokenize("a $ b"), FatalError);
    EXPECT_THROW(tokenize("/* never closed"), FatalError);
}

TEST(Lexer, EndTokenAlwaysPresent)
{
    auto toks = tokenize("");
    ASSERT_EQ(toks.size(), 1u);
    EXPECT_EQ(toks[0].kind, Tok::End);
}

TEST(Lexer, CaretSnippetGolden)
{
    // Golden rendering: line number gutter, source line, and the
    // caret aligned under the reported column.
    const std::string src = "first line\nint x = oops;\nlast";
    EXPECT_EQ(caretSnippet(src, 2, 9),
              "\n  2 | int x = oops;"
              "\n    |         ^");
}

TEST(Lexer, CaretSnippetPreservesTabsForAlignment)
{
    const std::string src = "\tint x;";
    EXPECT_EQ(caretSnippet(src, 1, 2),
              "\n  1 | \tint x;"
              "\n    | \t^");
}

TEST(Lexer, CaretSnippetOutOfRangeIsEmpty)
{
    EXPECT_EQ(caretSnippet("one line", 5, 1), "");
    EXPECT_EQ(caretSnippet("one line", 0, 1), "");
    EXPECT_EQ(caretSnippet("one line", 1, 0), "");
}

TEST(Lexer, BadCharacterDiagnosticCarriesCaretSnippet)
{
    try {
        tokenize("int a;\nint $ b;\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("\n  2 | int $ b;"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("\n    |     ^"), std::string::npos) << msg;
    }
}

TEST(Lexer, UnterminatedCommentDiagnosticPointsAtItsStart)
{
    try {
        tokenize("int a;\n  /* never closed\nint b;");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unterminated"), std::string::npos) << msg;
        EXPECT_NE(msg.find("\n  2 |   /* never closed"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("\n    |   ^"), std::string::npos) << msg;
    }
}

TEST(Lexer, OutOfRangeNumericLiteralIsFatalNotStdException)
{
    // Without the range guard this would escape as std::out_of_range
    // from std::stoll — the frontend fuzz target's original finding
    // class.
    try {
        tokenize("x = 99999999999999999999999999;");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
        EXPECT_NE(msg.find("^"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace macross::frontend
