/**
 * @file
 * Parser + elaboration tests: surface programs must produce valid
 * graphs that run, SIMDize bit-exactly, and exercise the language's
 * template-instantiation semantics.
 */
#include "frontend/parser.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "support/diagnostics.h"

namespace macross::frontend {
namespace {

const char* kMini = R"(
// A stateful source, a scaler, and an accumulating sink.
void->float filter Source(int n) {
    int seed;
    init { seed = 7; }
    work push n {
        for (int i = 0; i < n; i++) {
            seed = seed * 1103515245 + 12345;
            push(float((seed >> 16) & 32767) * 0.0001);
        }
    }
}

float->float filter Scale(float k) {
    work pop 1 push 1 { push(pop() * k); }
}

float->void filter Sink() {
    float acc;
    init { acc = 0.0; }
    work pop 1 { acc = acc + pop(); }
}

void->void pipeline Main() {
    add Source(4);
    add Scale(2.5);
    add Sink();
}
)";

TEST(Parser, MiniProgramElaboratesAndRuns)
{
    auto program = parseProgram(kMini);
    auto compiled = vectorizer::compileScalar(program);
    EXPECT_EQ(compiled.graph.actors.size(), 3u);
    auto out = testutil::capture(compiled, 32);
    EXPECT_EQ(out.size(), 32u);
}

TEST(Parser, ParsedProgramSimdizesBitExactly)
{
    auto program = parseProgram(kMini);
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    testutil::expectTransformPreservesOutput(program, opts, 128);
}

TEST(Parser, SplitJoinWithIsomorphicBranchesGoesHorizontal)
{
    const char* src = R"(
void->float filter Src() {
    int s;
    init { s = 3; }
    work push 4 {
        for (int i = 0; i < 4; i++) {
            s = s * 1103515245 + 12345;
            push(float((s >> 16) & 32767) * 0.001);
        }
    }
}
float->float filter Band(float g) {
    work pop 2 push 1 {
        float a = pop();
        float b = pop();
        push((a + b) * g);
    }
}
float->void filter Out() {
    float acc;
    work pop 1 { acc = acc + pop(); }
}
void->void pipeline Main() {
    add Src();
    add splitjoin {
        split roundrobin(2, 2, 2, 2);
        add Band(0.5);
        add Band(0.6);
        add Band(0.7);
        add Band(0.8);
        join roundrobin(1, 1, 1, 1);
    };
    add Out();
}
)";
    auto program = parseProgram(src);
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    auto compiled = vectorizer::macroSimdize(program, opts);
    bool horizontal = false;
    for (const auto& a : compiled.graph.actors) {
        if (a.kind == graph::ActorKind::Splitter && a.horizontal)
            horizontal = true;
    }
    EXPECT_TRUE(horizontal);
    testutil::expectTransformPreservesOutput(program, opts, 128);
}

TEST(Parser, PipelinesComposeAndTakeParameters)
{
    const char* src = R"(
void->float filter Src() {
    int s;
    work push 1 { s = s + 1; push(float(s)); }
}
float->float filter Scale(float k) {
    work pop 1 push 1 { push(pop() * k); }
}
float->float pipeline Twice(float k) {
    add Scale(k);
    add Scale(k);
}
float->void filter Out() {
    float acc;
    work pop 1 { acc = acc + pop(); }
}
void->void pipeline Main() {
    add Src();
    add Twice(3.0);
    add Out();
}
)";
    auto program = parseProgram(src);
    auto compiled = vectorizer::compileScalar(program);
    // Src + Scale + Scale + Out.
    EXPECT_EQ(compiled.graph.actors.size(), 4u);
    auto out = testutil::capture(compiled, 8);
    // 1*9, 2*9, ...
    EXPECT_FLOAT_EQ(out[0].f(), 9.0f);
    EXPECT_FLOAT_EQ(out[3].f(), 36.0f);
}

TEST(Parser, PeekingFilterAndControlFlow)
{
    const char* src = R"(
void->float filter Src() {
    int s;
    work push 2 { s = s + 1; push(float(s)); push(float(s) * 0.5); }
}
float->float filter Smooth(int w) {
    work peek w pop 1 push 1 {
        float sum = 0.0;
        for (int i = 0; i < w; i++) {
            sum = sum + peek(i);
        }
        float t = pop();
        if (sum > 100.0) {
            push(sum * 0.01);
        } else {
            push(sum / float(w));
        }
    }
}
float->void filter Out() {
    float acc;
    work pop 1 { acc = acc + pop(); }
}
void->void pipeline Main() {
    add Src();
    add Smooth(5);
    add Out();
}
)";
    auto program = parseProgram(src);
    auto compiled = vectorizer::compileScalar(program);
    auto out = testutil::capture(compiled, 64);
    EXPECT_EQ(out.size(), 64u);
}

TEST(Parser, MainIsPreferredOverLastPipeline)
{
    const char* src = R"(
void->float filter S() { int s; work push 1 { s = s + 1; push(float(s)); } }
float->void filter K() { float a; work pop 1 { a = a + pop(); } }
void->void pipeline Main() { add S(); add K(); }
void->void pipeline Other() { add S(); add S(); add K(); }
)";
    // `Other` is invalid as a program (two sources), but Main wins.
    EXPECT_NO_THROW(parseProgram(src));
}

TEST(Parser, DiagnosticsCarryLineInfo)
{
    try {
        parseProgram("float->float filter F() { work pop 1 push 1 "
                     "{ push(unknown_var); } }\n"
                     "void->void pipeline Main() { add F(); }");
        FAIL() << "expected parse error";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("unknown name"),
                  std::string::npos);
    }
}

TEST(Parser, ErrorsOnBadPrograms)
{
    EXPECT_THROW(parseProgram("garbage"), FatalError);
    EXPECT_THROW(parseProgram("void->void pipeline Main() { }"),
                 FatalError);
    // Unknown actor.
    EXPECT_THROW(
        parseProgram("void->void pipeline Main() { add Nope(); }"),
        FatalError);
    // Rate mismatch between declaration and body.
    EXPECT_THROW(parseProgram(R"(
void->float filter Bad() { work push 2 { push(1.0); } }
float->void filter K() { float a; work pop 1 { a = a + pop(); } }
void->void pipeline Main() { add Bad(); add K(); }
)"),
                 FatalError);
    // Non-constant argument.
    EXPECT_THROW(parseProgram(R"(
float->float filter F(float k) { work pop 1 push 1 { push(pop()*k); } }
void->void pipeline Main() { add F(pop()); }
)"),
                 FatalError);
}

TEST(Parser, ParseErrorCarriesCaretSnippetGolden)
{
    // Line 2 is malformed at the '}' (column 27): the diagnostic must
    // quote the source line and point a caret at that column.
    try {
        parseProgram("void->float filter F() {\n"
                     "    work push 1 { push( }\n"
                     "}\n"
                     "void->void pipeline Main() { add F(); }");
        FAIL() << "expected parse error";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("parse error at line 2"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("\n  2 |     work push 1 { push( }"),
                  std::string::npos)
            << msg;
        // The caret must be aligned under the reported column.
        const std::size_t colAt = msg.find("column ");
        ASSERT_NE(colAt, std::string::npos) << msg;
        const int col = std::stoi(msg.substr(colAt + 7));
        const std::string caretLine =
            "\n    | " + std::string(static_cast<std::size_t>(col - 1),
                                     ' ') +
            "^";
        EXPECT_NE(msg.find(caretLine), std::string::npos) << msg;
    }
}

TEST(Parser, DeeplyNestedExpressionIsRejectedNotOverflowed)
{
    // 5000 parens would overflow recursive descent without the depth
    // guard; with it, the parser must reject the input with fatal().
    std::string deep = "void->float filter F() { work push 1 { push(";
    deep.append(5000, '(');
    deep += "1.0";
    deep.append(5000, ')');
    deep += "); } }\nvoid->void pipeline Main() { add F(); }";
    try {
        parseProgram(deep);
        FAIL() << "expected parse error";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("nested too deeply"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Parser, DeeplyNestedStatementsAreRejectedNotOverflowed)
{
    std::string deep = "void->float filter F() { work push 1 { ";
    deep.append(3000, '{');
    deep += "push(1.0);";
    deep.append(3000, '}');
    deep += " } }\nvoid->void pipeline Main() { add F(); }";
    EXPECT_THROW(parseProgram(deep), FatalError);
}

TEST(Parser, IntFiltersAndBitOps)
{
    const char* src = R"(
void->int filter Gen() {
    int s;
    init { s = 1; }
    work push 1 { s = (s * 75) % 65537; push(s & 255); }
}
int->int filter Mix() {
    work pop 2 push 1 {
        int a = pop();
        int b = pop();
        push((a ^ b) | (a >> 4));
    }
}
int->void filter Drop() {
    int acc;
    work pop 1 { acc = acc + pop(); }
}
void->void pipeline Main() { add Gen(); add Mix(); add Drop(); }
)";
    auto program = parseProgram(src);
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    testutil::expectTransformPreservesOutput(program, opts, 64);
}

} // namespace
} // namespace macross::frontend
