/**
 * @file
 * Standalone driver for the fuzz entry points on toolchains without
 * libFuzzer (gcc). Links against one fuzz_*.cpp and replays:
 *
 *  1. every file passed on the command line (the seed corpus — ctest
 *     passes examples/programs/*.str), and
 *  2. a deterministic battery of pseudo-random buffers from a fixed
 *     LCG, covering sizes from empty to a few KiB.
 *
 * This keeps the fuzz targets compiled, linked, and exercised by the
 * tier-1 test suite on every build; the coverage-guided exploration
 * itself runs in the CI fuzz job under clang + libFuzzer + ASan.
 */
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int
main(int argc, char** argv)
{
    int inputs = 0;

    for (int i = 1; i < argc; ++i) {
        std::ifstream in(argv[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open corpus file %s\n",
                         argv[i]);
            return 1;
        }
        std::vector<char> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const std::uint8_t*>(bytes.data()),
            bytes.size());
        ++inputs;
    }

    // Deterministic LCG battery (same sequence every run, so a smoke
    // failure reproduces trivially).
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto nextByte = [&]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint8_t>(state >> 33);
    };
    for (int round = 0; round < 64; ++round) {
        const std::size_t len =
            static_cast<std::size_t>((round * 131) % 2053);
        std::vector<std::uint8_t> buf(len);
        for (auto& b : buf)
            b = nextByte();
        LLVMFuzzerTestOneInput(buf.data(), buf.size());
        ++inputs;
    }

    std::printf("fuzz smoke: %d inputs, no findings\n", inputs);
    return 0;
}
