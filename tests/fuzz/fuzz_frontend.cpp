/**
 * @file
 * Frontend fuzz target: arbitrary bytes through the lexer + parser +
 * elaborator.
 *
 * The contract under test is the diagnostics discipline: malformed
 * input of any shape must be rejected with fatal() (a FatalError with
 * line/column and a caret snippet) — never a crash, never an escaping
 * PanicError (that class is reserved for internal bugs), never an
 * escaping standard-library exception (e.g. std::out_of_range from a
 * numeric literal the lexer forgot to range-check), and never a stack
 * overflow from unbounded recursive descent.
 *
 * Built two ways by tests/fuzz/CMakeLists.txt: as a libFuzzer+ASan
 * binary (clang, CI fuzz job) and as a deterministic smoke test
 * driven by driver_main.cpp (any toolchain, runs in ctest).
 */
#include <cstddef>
#include <cstdint>
#include <string>

#include "frontend/parser.h"
#include "support/diagnostics.h"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    std::string source(reinterpret_cast<const char*>(data), size);
    try {
        macross::frontend::parseProgram(source);
    } catch (const macross::FatalError&) {
        // The one sanctioned rejection path.
    }
    // Anything else propagates out of this function and the harness
    // reports it as a finding.
    return 0;
}
