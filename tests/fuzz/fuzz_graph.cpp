/**
 * @file
 * Structured graph fuzz target: random but type-correct stream graphs
 * through the full compile + execute pipeline, with engine-differential
 * checking on every input.
 *
 * The input bytes parameterize (not constitute) the program: a seed
 * and option bits select a generated graph (benchmarks/random_graph.h
 * only emits well-typed, rate-consistent programs) and a compilation
 * config — scalar or macro-SIMDized at width 2/4/8, with or without
 * the SAGU tape layout. Each generated program then runs under BOTH
 * engines, and the run aborts unless the bytecode VM reproduces the
 * tree-walking oracle bit-for-bit: identical captured output lanes and
 * identical modeled cycle totals. The bytecode verifier sits on this
 * path too (Runner::ensureCompiled), so every fuzz input also checks
 * that verification never rejects legitimately compiled code.
 *
 * FatalError is the sanctioned rejection for configs the cost model or
 * vectorizer refuses; anything else escaping is a finding.
 */
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "benchmarks/random_graph.h"
#include "interp/runner.h"
#include "machine/cost_sink.h"
#include "support/diagnostics.h"
#include "vectorizer/pipeline.h"

namespace {

/** Sequential byte decoder (zeros once exhausted). */
class ByteReader {
  public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }
    std::uint64_t u64()
    {
        std::uint64_t v = 0;
        for (int k = 0; k < 8; ++k)
            v = (v << 8) | u8();
        return v;
    }
    bool bit() { return (u8() & 1) != 0; }

  private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

struct EngineRun {
    std::vector<macross::interp::Value> out;
    double cycles = 0.0;
};

EngineRun
runWith(const macross::vectorizer::CompiledProgram& p,
        const macross::machine::MachineDesc& m,
        macross::interp::ExecEngine engine, std::int64_t n)
{
    macross::machine::CostSink cost(m);
    macross::interp::Runner r(p.graph, p.schedule, &cost,
                              macross::interp::EngineConfig(engine));
    r.runUntilCaptured(n, 2000);
    EngineRun run;
    run.out.assign(r.captured().begin(), r.captured().begin() + n);
    run.cycles = cost.totalCycles();
    return run;
}

[[noreturn]] void
finding(const char* what, std::uint64_t seed)
{
    std::fprintf(stderr,
                 "fuzz_graph: engine differential FAILED (%s) for "
                 "seed %llu\n",
                 what, static_cast<unsigned long long>(seed));
    std::abort();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    using namespace macross;
    ByteReader in(data, size);

    const std::uint64_t seed = in.u64();
    benchmarks::RandomGraphOptions gopt;
    gopt.maxPipelineLength = 2 + in.u8() % 5;
    gopt.maxRate = 1 + in.u8() % 5;
    gopt.allowStateful = in.bit();
    gopt.allowPeeking = in.bit();
    gopt.allowSplitJoin = in.bit();
    gopt.splitJoinLanes = in.bit() ? 4 : 2;

    const bool simdize = in.bit();
    const bool sagu = simdize && in.bit();
    const int widths[3] = {2, 4, 8};
    const int width = widths[in.u8() % 3];
    const std::int64_t n = 16 + in.u8() % 17;

    try {
        graph::StreamPtr program = benchmarks::randomProgram(seed, gopt);

        machine::MachineDesc m =
            sagu ? machine::coreI7WithSagu() : machine::coreI7();
        m.simdWidth = width;

        vectorizer::CompiledProgram compiled;
        if (simdize) {
            vectorizer::SimdizeOptions opts;
            opts.machine = m;
            opts.enableSagu = sagu;
            opts.forceSimdize = true;
            compiled = vectorizer::macroSimdize(program, opts);
        } else {
            compiled = vectorizer::compileScalar(program);
        }

        const EngineRun tree =
            runWith(compiled, m, interp::ExecEngine::Tree, n);
        const EngineRun vm =
            runWith(compiled, m, interp::ExecEngine::Bytecode, n);

        if (tree.out.size() != vm.out.size())
            finding("element count", seed);
        for (std::size_t i = 0; i < tree.out.size(); ++i) {
            if (!(tree.out[i] == vm.out[i]))
                finding("output bits", seed);
        }
        if (tree.cycles != vm.cycles)
            finding("modeled cycles", seed);
    } catch (const FatalError&) {
        // Over-constrained config (e.g. the vectorizer refusing a
        // graph shape): a sanctioned rejection, not a finding.
    }
    return 0;
}
