/**
 * @file
 * Unit tests for flat-actor rate accounting, including the horizontal
 * splitter/joiner endpoints whose vector tapes still count scalar
 * elements (the invariant the balance equations rely on).
 */
#include <gtest/gtest.h>

#include "benchmarks/suite.h"
#include "graph/flat_graph.h"
#include "interp/runner.h"
#include "support/diagnostics.h"
#include "schedule/steady_state.h"
#include "vectorizer/pipeline.h"

namespace macross::graph {
namespace {

TEST(ActorRates, HorizontalEndpointsCountScalarElements)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    auto compiled = vectorizer::macroSimdize(
        benchmarks::makeRunningExample(), opts);

    const Actor* hsplit = nullptr;
    const Actor* hjoin = nullptr;
    for (const auto& a : compiled.graph.actors) {
        if (a.kind == ActorKind::Splitter && a.horizontal)
            hsplit = &a;
        if (a.kind == ActorKind::Joiner && a.horizontal)
            hjoin = &a;
    }
    ASSERT_NE(hsplit, nullptr);
    ASSERT_NE(hjoin, nullptr);

    // The running example's splitter weights are (4,4,4,4): the
    // HSplitter consumes 16 scalars and produces 16 scalars (as 4
    // interleaved vectors) per firing.
    EXPECT_EQ(hsplit->popRate(0), 16);
    EXPECT_EQ(hsplit->pushRate(0), 16);
    EXPECT_EQ(hsplit->hLanes, 4);
    // The HJoiner is the inverse with weights (1,1,1,1).
    EXPECT_EQ(hjoin->popRate(0), 4);
    EXPECT_EQ(hjoin->pushRate(0), 4);
}

TEST(ActorRates, HorizontalGraphStillRateMatches)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    for (const char* name : {"FilterBank", "BeamFormer"}) {
        SCOPED_TRACE(name);
        auto compiled = vectorizer::macroSimdize(
            benchmarks::benchmarkByName(name), opts);
        schedule::checkRateMatched(compiled.graph, compiled.schedule);
    }
}

TEST(ActorRates, SplitterPortQueriesAreBounded)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeFilterBank());
    for (const auto& a : compiled.graph.actors) {
        if (a.kind != ActorKind::Splitter || a.horizontal)
            continue;
        EXPECT_THROW(a.popRate(1), PanicError);
        for (int p = 0; p < static_cast<int>(a.outputs.size()); ++p)
            EXPECT_GT(a.pushRate(p), 0);
    }
}

TEST(ActorRates, PeekRateDefaultsToPopForSplittersAndJoiners)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeFilterBank());
    for (const auto& a : compiled.graph.actors) {
        if (a.isFilter())
            continue;
        for (int p = 0; p < static_cast<int>(a.inputs.size()); ++p)
            EXPECT_EQ(a.peekRate(p), a.popRate(p));
    }
}

TEST(ActorRates, TapeOccupancyBoundedBySchedule)
{
    // With the topological single-appearance schedule, a tape's high
    // water mark never exceeds warm-up + one steady state of traffic.
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeFmRadio());
    interp::Runner r(compiled.graph, compiled.schedule);
    r.runUntilCaptured(200);
    // (Reaching here without tape bounds panics is the assertion; the
    // Tape itself checks every access.)
    SUCCEED();
}

} // namespace
} // namespace macross::graph
