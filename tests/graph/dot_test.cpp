/**
 * @file
 * Unit tests for the Graphviz exporter.
 */
#include "graph/dot.h"

#include <gtest/gtest.h>

#include "benchmarks/suite.h"
#include "vectorizer/pipeline.h"

namespace macross::graph {
namespace {

TEST(Dot, ScalarGraphListsActorsAndTapes)
{
    auto compiled =
        vectorizer::compileScalar(benchmarks::makeRunningExample());
    std::string dot = toDot(compiled.graph, compiled.schedule);
    EXPECT_NE(dot.find("digraph stream {"), std::string::npos);
    // Every actor appears as a node, every tape as an edge.
    for (const auto& a : compiled.graph.actors) {
        EXPECT_NE(dot.find("a" + std::to_string(a.id) + " ["),
                  std::string::npos);
    }
    std::size_t edges = 0, pos = 0;
    while ((pos = dot.find(" -> ", pos)) != std::string::npos) {
        ++edges;
        pos += 4;
    }
    EXPECT_EQ(edges, compiled.graph.tapes.size());
    // The paper's D actor with its Figure 2a repetition count.
    EXPECT_NE(dot.find("D\\npeek=2 pop=2 push=2\\nrep=6"),
              std::string::npos);
}

TEST(Dot, VectorizedGraphIsAnnotated)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = true;
    opts.machine = machine::coreI7WithSagu();
    auto compiled =
        vectorizer::macroSimdize(benchmarks::makeMatrixMult(), opts);
    std::string dot = toDot(compiled.graph, compiled.schedule);
    EXPECT_NE(dot.find("x4"), std::string::npos);       // lanes
    EXPECT_NE(dot.find("(sagu)"), std::string::npos);   // tape layout
}

TEST(Dot, HorizontalEndpointsRendered)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    auto compiled = vectorizer::macroSimdize(
        benchmarks::makeFilterBank(), opts);
    std::string dot = toDot(compiled.graph, compiled.schedule);
    EXPECT_NE(dot.find("HSplit"), std::string::npos);
    EXPECT_NE(dot.find("HJoin"), std::string::npos);
}

} // namespace
} // namespace macross::graph
