/**
 * @file
 * Unit tests for FilterDef validation and statefulness.
 */
#include "graph/filter.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::graph {
namespace {

using namespace ir;

TEST(Filter, RateValidationCatchesMismatch)
{
    FilterBuilder f("bad", kFloat32, kFloat32);
    f.rates(1, 1, 2);  // declares push 2 ...
    auto x = f.local("x", kFloat32);
    f.work().assign(x, f.pop());
    f.work().push(varRef(x));  // ... but pushes only 1
    EXPECT_THROW(f.build(), FatalError);
}

TEST(Filter, PeekBelowPopIsRaised)
{
    FilterBuilder f("peeker", kFloat32, kFloat32);
    f.rates(0, 2, 1);  // peek 0 declared, pop 2
    auto x = f.local("x", kFloat32);
    f.work().assign(x, f.pop());
    f.work().assign(x, varRef(x) + f.pop());
    f.work().push(varRef(x));
    auto def = f.build();
    EXPECT_EQ(def->peek, 2);
    EXPECT_FALSE(def->isPeeking());
}

TEST(Filter, InitMustNotTouchTapes)
{
    FilterBuilder f("badinit", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    f.init().assign(x, f.pop());
    f.work().push(f.pop());
    EXPECT_THROW(f.build(), FatalError);
}

TEST(Filter, StatefulnessIsWriteBased)
{
    // Read-only state (a coefficient table) is not "state" in the
    // paper's sense; written state is.
    FilterBuilder ro("readonly", kFloat32, kFloat32);
    ro.rates(1, 1, 1);
    auto coeff = ro.state("coeff", kFloat32, 4);
    auto i = ro.local("i", kInt32);
    ro.init().forLoop(i, 0, 4, [&](BlockBuilder& b) {
        b.store(coeff, varRef(i), floatImm(0.5f));
    });
    ro.work().push(ro.pop() * load(coeff, intImm(0)));
    EXPECT_FALSE(ro.build()->isStateful());

    FilterBuilder rw("written", kFloat32, kFloat32);
    rw.rates(1, 1, 1);
    auto acc = rw.state("acc", kFloat32);
    rw.init().assign(acc, floatImm(0.0f));
    rw.work().assign(acc, varRef(acc) + rw.pop());
    rw.work().push(varRef(acc));
    EXPECT_TRUE(rw.build()->isStateful());
}

TEST(Filter, DataDependentRatesRejected)
{
    FilterBuilder f("dyn", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    f.work().assign(x, f.pop());
    f.work().ifElse(varRef(x) > floatImm(0.0f),
                    [&](BlockBuilder& t) { t.push(varRef(x)); },
                    [&](BlockBuilder& e) {
                        e.push(varRef(x));
                        e.push(varRef(x));
                    });
    EXPECT_THROW(f.build(), FatalError);
}

TEST(Filter, BuildTwicePanics)
{
    FilterBuilder f("once", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    f.work().push(f.pop());
    f.build();
    EXPECT_THROW(f.build(), PanicError);
}

} // namespace
} // namespace macross::graph
