/**
 * @file
 * Unit tests for flattening and flat-graph structure.
 */
#include "graph/flat_graph.h"

#include <gtest/gtest.h>

#include "benchmarks/common.h"
#include "support/diagnostics.h"

namespace macross::graph {
namespace {

using benchmarks::floatSink;
using benchmarks::floatSource;
using benchmarks::gain;
using benchmarks::identity;

TEST(Flatten, SimplePipeline)
{
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 2)),
        filterStream(gain("g", 2.0f)),
        filterStream(floatSink("snk", 1)),
    }));
    EXPECT_EQ(g.actors.size(), 3u);
    EXPECT_EQ(g.tapes.size(), 2u);
    auto order = g.topoOrder();
    EXPECT_EQ(g.actor(order.front()).name, "src");
    EXPECT_EQ(g.actor(order.back()).name, "snk");
}

TEST(Flatten, SplitJoinCreatesSplitterAndJoiner)
{
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 4)),
        splitJoinRoundRobin({1, 1},
                            {filterStream(gain("a", 1.0f)),
                             filterStream(gain("b", 2.0f))},
                            {1, 1}),
        filterStream(floatSink("snk", 1)),
    }));
    int splitters = 0, joiners = 0;
    for (const auto& a : g.actors) {
        splitters += a.kind == ActorKind::Splitter;
        joiners += a.kind == ActorKind::Joiner;
    }
    EXPECT_EQ(splitters, 1);
    EXPECT_EQ(joiners, 1);
    // Splitter: one input, two outputs; rates follow the weights.
    for (const auto& a : g.actors) {
        if (a.kind == ActorKind::Splitter) {
            EXPECT_EQ(a.inputs.size(), 1u);
            EXPECT_EQ(a.outputs.size(), 2u);
            EXPECT_EQ(a.popRate(0), 2);
            EXPECT_EQ(a.pushRate(0), 1);
        }
    }
}

TEST(Flatten, DuplicateSplitterRates)
{
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 1)),
        splitJoinDuplicate({filterStream(gain("a", 1.0f)),
                            filterStream(gain("b", 2.0f))},
                           {1, 1}),
        filterStream(floatSink("snk", 1)),
    }));
    for (const auto& a : g.actors) {
        if (a.kind == ActorKind::Splitter) {
            EXPECT_EQ(a.popRate(0), 1);
            EXPECT_EQ(a.pushRate(0), 1);
            EXPECT_EQ(a.pushRate(1), 1);
        }
    }
}

TEST(Flatten, RequiresSourceAndSinkEndpoints)
{
    // A pipeline starting with a popping filter is not a program.
    EXPECT_THROW(flatten(pipeline({
                     filterStream(gain("g", 1.0f)),
                     filterStream(floatSink("snk", 1)),
                 })),
                 FatalError);
}

TEST(Flatten, TypeMismatchDetected)
{
    using benchmarks::intSource;
    EXPECT_THROW(flatten(pipeline({
                     filterStream(intSource("isrc", 1)),
                     filterStream(gain("g", 1.0f)),
                     filterStream(floatSink("snk", 1)),
                 })),
                 FatalError);
}

TEST(Flatten, IdentityBranchPortsConsistent)
{
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 2)),
        splitJoinRoundRobin({1, 1},
                            {filterStream(identity("i0")),
                             filterStream(identity("i1"))},
                            {1, 1}),
        filterStream(floatSink("snk", 1)),
    }));
    validate(g);  // must not throw
    for (const auto& t : g.tapes) {
        EXPECT_EQ(g.actor(t.src).outputs.at(t.srcPort), t.id);
        EXPECT_EQ(g.actor(t.dst).inputs.at(t.dstPort), t.id);
    }
}

} // namespace
} // namespace macross::graph
