/**
 * @file
 * Unit tests for the isomorphism comparator.
 */
#include "graph/isomorphism.h"

#include <gtest/gtest.h>

namespace macross::graph {
namespace {

using namespace ir;

FilterDefPtr
mapper(const std::string& name, float c1, float c2)
{
    FilterBuilder f(name, kFloat32, kFloat32);
    f.rates(2, 2, 1);
    auto a = f.local("a", kFloat32);
    auto b = f.local("b", kFloat32);
    f.work().assign(a, f.pop());
    f.work().assign(b, f.pop());
    f.work().push(varRef(a) * floatImm(c1) + varRef(b) * floatImm(c2));
    return f.build();
}

TEST(Isomorphism, IdenticalDefsMatchWithNoDiffs)
{
    auto a = mapper("a", 1.0f, 2.0f);
    auto b = mapper("b", 1.0f, 2.0f);
    IsoResult r = compareIsomorphic({a.get(), b.get()});
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.intDiffs.empty());
    EXPECT_TRUE(r.floatDiffs.empty());
}

TEST(Isomorphism, DifferingConstantsAreCollected)
{
    auto a = mapper("a", 1.0f, 2.0f);
    auto b = mapper("b", 3.0f, 2.0f);
    auto c = mapper("c", 5.0f, 2.0f);
    IsoResult r = compareIsomorphic({a.get(), b.get(), c.get()});
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.floatDiffs.size(), 1u);
    const auto& vals = r.floatDiffs.begin()->second;
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_FLOAT_EQ(vals[0], 1.0f);
    EXPECT_FLOAT_EQ(vals[1], 3.0f);
    EXPECT_FLOAT_EQ(vals[2], 5.0f);
}

TEST(Isomorphism, RateMismatchRejected)
{
    auto a = mapper("a", 1.0f, 2.0f);
    FilterBuilder f("b", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    f.work().push(f.pop());
    auto b = f.build();
    EXPECT_FALSE(compareIsomorphic({a.get(), b.get()}).ok);
}

TEST(Isomorphism, StructureMismatchRejected)
{
    auto a = mapper("a", 1.0f, 2.0f);
    FilterBuilder f("b", kFloat32, kFloat32);
    f.rates(2, 2, 1);
    auto x = f.local("x", kFloat32);
    auto y = f.local("y", kFloat32);
    f.work().assign(x, f.pop());
    f.work().assign(y, f.pop());
    // Different operator shape: uses subtraction.
    f.work().push(varRef(x) * floatImm(1.0f) -
                  varRef(y) * floatImm(2.0f));
    auto b = f.build();
    EXPECT_FALSE(compareIsomorphic({a.get(), b.get()}).ok);
}

TEST(Isomorphism, VariableCorrespondenceIsConsistent)
{
    // b swaps which local is used in the final expression; structures
    // are otherwise identical, so the correspondence check must fire.
    FilterBuilder fa("a", kFloat32, kFloat32);
    fa.rates(2, 2, 1);
    auto a1 = fa.local("p", kFloat32);
    auto a2 = fa.local("q", kFloat32);
    fa.work().assign(a1, fa.pop());
    fa.work().assign(a2, fa.pop());
    fa.work().push(varRef(a1));
    auto da = fa.build();

    FilterBuilder fb("b", kFloat32, kFloat32);
    fb.rates(2, 2, 1);
    auto b1 = fb.local("p", kFloat32);
    auto b2 = fb.local("q", kFloat32);
    fb.work().assign(b1, fb.pop());
    fb.work().assign(b2, fb.pop());
    fb.work().push(varRef(b2));  // swapped
    auto db = fb.build();

    EXPECT_FALSE(compareIsomorphic({da.get(), db.get()}).ok);
}

TEST(Isomorphism, StatefulShiftRegistersMatch)
{
    auto makeC = [](const std::string& n) {
        FilterBuilder f(n, kFloat32, kFloat32);
        f.rates(1, 1, 1);
        auto st = f.state("st", kFloat32, 8);
        auto ph = f.state("ph", kInt32);
        f.init().assign(ph, intImm(0));
        f.work().push(load(st, varRef(ph)));
        f.work().store(st, varRef(ph), f.pop());
        f.work().assign(ph, (varRef(ph) + intImm(1)) % intImm(8));
        return f.build();
    };
    auto a = makeC("c0");
    auto b = makeC("c1");
    EXPECT_TRUE(compareIsomorphic({a.get(), b.get()}).ok);
}

} // namespace
} // namespace macross::graph
