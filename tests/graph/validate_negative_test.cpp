/**
 * @file
 * Negative-path tests for graph and filter validation: one test per
 * fatalIf site in graph/validate.cpp and validateFilter
 * (graph/filter.cpp), each asserting the diagnostic names the
 * offending tape or actor so a failing compile points at the culprit.
 */
#include "graph/flat_graph.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "benchmarks/common.h"
#include "ir/builder.h"
#include "support/diagnostics.h"

namespace macross::graph {
namespace {

using benchmarks::floatSink;
using benchmarks::floatSource;
using benchmarks::identity;
using benchmarks::intSource;

/** Assert @p fn throws FatalError whose text contains @p needle. */
template <typename Fn>
void
expectFatal(Fn&& fn, const std::string& needle)
{
    try {
        fn();
        FAIL() << "expected FatalError containing '" << needle << "'";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "diagnostic was: " << e.what();
    }
}

int
addFilter(FlatGraph& g, FilterDefPtr def)
{
    Actor a;
    a.name = def->name;
    a.kind = ActorKind::Filter;
    a.def = std::move(def);
    return g.addActor(std::move(a));
}

/** A minimal valid source -> sink graph to mutate. */
FlatGraph
sourceSinkGraph()
{
    FlatGraph g;
    int src = addFilter(g, floatSource("src", 1));
    int snk = addFilter(g, floatSink("snk", 1));
    g.addTape(src, snk, ir::kFloat32);
    return g;
}

// --- validate.cpp: tape checks ---

TEST(ValidateNegative, UnconnectedTapeNamesTheTape)
{
    FlatGraph g = sourceSinkGraph();
    g.tapes[0].dst = -1;
    expectFatal([&] { validate(g); }, "tape 0 is unconnected");
}

TEST(ValidateNegative, SourcePortInconsistencyNamesTheTape)
{
    FlatGraph g = sourceSinkGraph();
    g.actors[0].outputs[0] = 99;  // Port list no longer holds tape 0.
    expectFatal([&] { validate(g); },
                "tape 0 source port inconsistency");
}

TEST(ValidateNegative, DestinationPortInconsistencyNamesTheTape)
{
    FlatGraph g = sourceSinkGraph();
    g.actors[1].inputs[0] = 99;
    expectFatal([&] { validate(g); },
                "tape 0 destination port inconsistency");
}

// --- validate.cpp: filter actor checks ---

TEST(ValidateNegative, FilterWithoutDefinitionNamesTheActor)
{
    FlatGraph g = sourceSinkGraph();
    g.actors[1].def = nullptr;
    expectFatal([&] { validate(g); },
                "filter actor snk has no definition");
}

TEST(ValidateNegative, FilterWithTwoInputsNamesTheActor)
{
    FlatGraph g;
    // The offending filter is actor 0 so its check runs before the
    // producers' own (deliberately unvalidated) shapes are reached.
    int f = addFilter(g, identity("twoIn"));
    int a = addFilter(g, floatSource("a", 1));
    int b = addFilter(g, floatSource("b", 1));
    g.addTape(a, f, ir::kFloat32);
    g.addTape(b, f, ir::kFloat32);
    expectFatal([&] { validate(g); },
                "filter twoIn must have at most one input");
}

TEST(ValidateNegative, PoppingFilterWithoutInputNamesTheActor)
{
    FlatGraph g;
    addFilter(g, floatSink("orphanSink", 1));  // pop 1, no tape.
    expectFatal([&] { validate(g); },
                "filter orphanSink pops but has no input tape");
}

TEST(ValidateNegative, PushingFilterWithoutOutputNamesTheActor)
{
    FlatGraph g;
    addFilter(g, floatSource("orphanSrc", 1));  // push 1, no tape.
    expectFatal([&] { validate(g); },
                "filter orphanSrc pushes but has no output tape");
}

TEST(ValidateNegative, InputElementTypeMismatchNamesTheActor)
{
    FlatGraph g;
    int src = addFilter(g, intSource("isrc", 1));
    int f = addFilter(g, identity("mismatched"));  // Expects float.
    int snk = addFilter(g, floatSink("snk", 1));
    g.addTape(src, f, ir::kInt32);
    g.addTape(f, snk, ir::kFloat32);
    expectFatal([&] { validate(g); },
                "filter mismatched input element-type mismatch");
}

TEST(ValidateNegative, OutputElementTypeMismatchNamesTheActor)
{
    FlatGraph g;
    int src = addFilter(g, floatSource("fsrc", 1));
    int snk = addFilter(g, floatSink("snk", 1));
    g.addTape(src, snk, ir::kInt32);  // Tape carries the wrong type.
    expectFatal([&] { validate(g); },
                "filter fsrc output element-type mismatch");
}

// --- validate.cpp: splitter / joiner checks ---

TEST(ValidateNegative, SplitterWithoutInputNamesTheActor)
{
    FlatGraph g;
    Actor s;
    s.name = "spl";
    s.kind = ActorKind::Splitter;
    s.weights = {1, 1};
    g.addActor(std::move(s));
    expectFatal([&] { validate(g); },
                "splitter spl must have exactly one input");
}

TEST(ValidateNegative, SplitterOutputCountMismatchNamesTheActor)
{
    FlatGraph g;
    Actor s;
    s.name = "spl";
    s.kind = ActorKind::Splitter;
    s.weights = {1, 1};  // Two branches declared...
    int spl = g.addActor(std::move(s));
    int src = addFilter(g, floatSource("src", 1));
    int snk = addFilter(g, floatSink("snk", 1));
    g.addTape(src, spl, ir::kFloat32);
    g.addTape(spl, snk, ir::kFloat32);  // ...but only one connected.
    expectFatal([&] { validate(g); },
                "splitter spl output count does not match weights");
}

TEST(ValidateNegative, JoinerWithoutOutputNamesTheActor)
{
    FlatGraph g;
    Actor j;
    j.name = "join";
    j.kind = ActorKind::Joiner;
    j.weights = {1, 1};
    g.addActor(std::move(j));
    expectFatal([&] { validate(g); },
                "joiner join must have exactly one output");
}

TEST(ValidateNegative, JoinerInputCountMismatchNamesTheActor)
{
    FlatGraph g;
    Actor j;
    j.name = "join";
    j.kind = ActorKind::Joiner;
    j.weights = {1, 1};  // Two branches declared, none connected.
    int join = g.addActor(std::move(j));
    int snk = addFilter(g, floatSink("snk", 1));
    g.addTape(join, snk, ir::kFloat32);
    expectFatal([&] { validate(g); },
                "joiner join input count does not match weights");
}

// --- filter.cpp: validateFilter checks ---

TEST(ValidateNegative, PeekBelowPopNamesTheFilter)
{
    FilterDef def;
    def.name = "shortPeek";
    def.peek = 1;
    def.pop = 2;
    expectFatal([&] { validateFilter(def); },
                "filter shortPeek: peek rate below pop rate");
}

TEST(ValidateNegative, InitTouchingTapesNamesTheFilter)
{
    FilterDef def;
    def.name = "eagerInit";
    ir::BlockBuilder init;
    init.push(ir::floatImm(1.0f));
    def.init = init.take();
    expectFatal([&] { validateFilter(def); },
                "filter eagerInit: init body accesses tapes");
}

TEST(ValidateNegative, NonStaticRatesNameTheFilter)
{
    FilterDef def;
    def.name = "dataDependent";
    def.peek = 1;
    def.pop = 1;
    auto x = std::make_shared<ir::Var>();
    x->name = "x";
    x->type = ir::kFloat32;
    x->kind = ir::VarKind::Local;
    ir::BlockBuilder work;
    // The two arms consume different amounts: no static SDF rate.
    work.ifElse(ir::intImm(1) > ir::intImm(0),
                [&](ir::BlockBuilder& b) {
                    b.assign(x, ir::popExpr(ir::kFloat32));
                },
                [](ir::BlockBuilder&) {});
    def.work = work.take();
    expectFatal([&] { validateFilter(def); },
                "filter dataDependent: tape access counts are not "
                "static");
}

TEST(ValidateNegative, PopCountMismatchNamesTheFilter)
{
    FilterDef def;
    def.name = "underPopper";
    def.peek = 2;
    def.pop = 2;
    auto x = std::make_shared<ir::Var>();
    x->name = "x";
    x->type = ir::kFloat32;
    x->kind = ir::VarKind::Local;
    ir::BlockBuilder work;
    work.assign(x, ir::popExpr(ir::kFloat32));  // 1 pop, declares 2.
    def.work = work.take();
    expectFatal([&] { validateFilter(def); },
                "filter underPopper: work body consumes 1 elements "
                "but declares pop rate 2");
}

TEST(ValidateNegative, PushCountMismatchNamesTheFilter)
{
    FilterDef def;
    def.name = "underPusher";
    def.push = 2;
    ir::BlockBuilder work;
    work.push(ir::floatImm(1.0f));  // 1 push, declares 2.
    def.work = work.take();
    expectFatal([&] { validateFilter(def); },
                "filter underPusher: work body produces 1 elements "
                "but declares push rate 2");
}

} // namespace
} // namespace macross::graph
