/**
 * @file
 * Unit tests for the firing compiler and the bytecode VM: lowering
 * shape, pre-resolved charges, stable loop ids, and agreement with
 * the tree-walking oracle on a single compiled actor.
 */
#include "interp/compile_actor.h"

#include <gtest/gtest.h>

#include "interp/executor.h"
#include "interp/vm.h"
#include "ir/analysis.h"
#include "machine/machine_desc.h"

namespace macross::interp {
namespace {

using namespace ir;
using bytecode::CompiledActor;
using bytecode::CompileOptions;
using bytecode::Instr;
using bytecode::Op;
using machine::OpClass;

/** Stateful 1->1 filter: y = x - prev_in + 0.995 * prev_out. */
graph::FilterDefPtr
makeDcBlock()
{
    graph::FilterBuilder f("DcBlock", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto prevIn = f.state("prev_in", kFloat32);
    auto prevOut = f.state("prev_out", kFloat32);
    auto x = f.local("x", kFloat32);
    auto y = f.local("y", kFloat32);
    f.init().assign(prevIn, floatImm(0.0f));
    f.init().assign(prevOut, floatImm(0.0f));
    f.work().assign(x, f.pop());
    f.work().assign(y, varRef(x) - varRef(prevIn) +
                           floatImm(0.995f) * varRef(prevOut));
    f.work().assign(prevIn, varRef(x));
    f.work().assign(prevOut, varRef(y));
    f.work().push(varRef(y));
    return f.build();
}

/** 1->1 filter whose work body runs an 8-trip inner loop. */
graph::FilterDefPtr
makeLoopFilter()
{
    graph::FilterBuilder f("LoopFilter", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    auto i = f.local("i", kInt32);
    f.work().assign(x, f.pop());
    f.work().forLoop(i, 0, 8, [&](BlockBuilder& b) {
        b.assign(x, varRef(x) * floatImm(0.5f) + floatImm(1.0f));
    });
    f.work().push(varRef(x));
    return f.build();
}

const Instr*
findOp(const bytecode::Code& code, Op op)
{
    for (const auto& in : code.instrs) {
        if (in.op == op)
            return &in;
    }
    return nullptr;
}

TEST(Bytecode, CompilesAndDisassembles)
{
    machine::MachineDesc m = machine::coreI7();
    auto def = makeDcBlock();
    CompiledActor ca = bytecode::compileActor(*def, {&m});

    // Two state + two local scalars -> four dense slots, no arrays.
    EXPECT_EQ(ca.numSlots, 4);
    EXPECT_TRUE(ca.arrays.empty());
    EXPECT_FALSE(ca.init.empty());
    EXPECT_FALSE(ca.work.empty());
    EXPECT_GT(ca.work.numRegs, 0);

    std::string dis = bytecode::disassemble(ca.work);
    EXPECT_NE(dis.find("pop"), std::string::npos);
    EXPECT_NE(dis.find("push"), std::string::npos);
    EXPECT_NE(dis.find("store_slot"), std::string::npos);
    EXPECT_NE(dis.find("halt"), std::string::npos);
}

TEST(Bytecode, ChargesArePreResolved)
{
    machine::MachineDesc m = machine::coreI7();
    auto def = makeDcBlock();
    CompiledActor ca = bytecode::compileActor(*def, {&m});

    const Instr* pop = findOp(ca.work, Op::Pop);
    ASSERT_NE(pop, nullptr);
    ASSERT_GE(pop->nCharges, 2);
    const auto& popCh = ca.work.chargePool;
    EXPECT_EQ(popCh[pop->chargeBase].cls, OpClass::ScalarLoad);
    EXPECT_DOUBLE_EQ(popCh[pop->chargeBase].cycles,
                     m.vectorCost(OpClass::ScalarLoad, 1));
    EXPECT_EQ(popCh[pop->chargeBase + 1].cls, OpClass::AddrCalc);

    const Instr* mul = findOp(ca.work, Op::Binary);
    ASSERT_NE(mul, nullptr);
    ASSERT_EQ(mul->nCharges, 1);
    EXPECT_DOUBLE_EQ(popCh[mul->chargeBase].cycles,
                     m.vectorCost(popCh[mul->chargeBase].cls, 1));

    // A null machine compiles with zero weights (uncosted runners).
    CompiledActor flat = bytecode::compileActor(*def, {});
    const Instr* pop2 = findOp(flat.work, Op::Pop);
    ASSERT_NE(pop2, nullptr);
    EXPECT_DOUBLE_EQ(flat.work.chargePool[pop2->chargeBase].cycles,
                     0.0);
}

TEST(Bytecode, SaguChargesFollowTransposeFlags)
{
    machine::MachineDesc m = machine::coreI7WithSagu();
    auto def = makeDcBlock();
    CompileOptions opts{&m};
    opts.saguIn = true;
    CompiledActor ca = bytecode::compileActor(*def, opts);
    const Instr* pop = findOp(ca.work, Op::Pop);
    ASSERT_NE(pop, nullptr);
    ASSERT_EQ(pop->nCharges, 3);
    EXPECT_EQ(ca.work.chargePool[pop->chargeBase + 2].cls,
              OpClass::SaguWalk);
    // Pushes are unaffected by the read-side transpose.
    const Instr* push = findOp(ca.work, Op::Push);
    ASSERT_NE(push, nullptr);
    EXPECT_EQ(push->nCharges, 2);
}

TEST(Bytecode, VmMatchesExecutorOnFirings)
{
    machine::MachineDesc m = machine::coreI7();
    auto def = makeDcBlock();
    const int firings = 16;

    // Bytecode engine.
    CompiledActor ca = bytecode::compileActor(*def, {&m});
    ActorFrame frame;
    frame.init(ca);
    Tape vmIn(kFloat32), vmOut(kFloat32);
    machine::CostSink vmCost(m);
    vmCost.setCurrentActor(0);
    Vm vm;
    vm.run(ca.init, frame, nullptr, nullptr, nullptr, nullptr);
    for (int i = 0; i < firings; ++i) {
        vmIn.push(Value::makeFloat(0.25f * i));
        vm.run(ca.work, frame, &vmIn, &vmOut, &vmCost, nullptr);
    }

    // Tree oracle.
    Env locals, state;
    Tape exIn(kFloat32), exOut(kFloat32);
    machine::CostSink exCost(m);
    exCost.setCurrentActor(0);
    Executor ex(locals, state, &exIn, &exOut, &exCost);
    ex.run(def->init);
    for (int i = 0; i < firings; ++i) {
        exIn.push(Value::makeFloat(0.25f * i));
        ex.run(def->work);
    }

    ASSERT_EQ(vmOut.available(), exOut.available());
    for (int i = 0; i < firings; ++i) {
        Value a = vmOut.pop(), b = exOut.pop();
        ASSERT_EQ(a, b) << "firing " << i << ": " << a.str() << " vs "
                        << b.str();
    }
    EXPECT_DOUBLE_EQ(vmCost.totalCycles(), exCost.totalCycles());
}

TEST(Bytecode, LoopEnterCarriesStableLoopId)
{
    machine::MachineDesc m = machine::coreI7();
    auto def = makeLoopFilter();
    CompiledActor ca = bytecode::compileActor(*def, {&m});

    const Instr* enter = findOp(ca.work, Op::LoopEnter);
    ASSERT_NE(enter, nullptr);
    auto ids = ir::numberLoops(def->work);
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(enter->lane, ids.begin()->second);
    ASSERT_NE(findOp(ca.work, Op::LoopNext), nullptr);

    // A loop cost plan keyed by that id modulates VM charging just
    // like the tree engine: ~1/4 of the loop body cost at width 4.
    auto runCost = [&](const Executor::LoopPlans* plans) {
        ActorFrame frame;
        frame.init(ca);
        Tape in(kFloat32), out(kFloat32);
        in.push(Value::makeFloat(1.0f));
        machine::CostSink cost(m);
        cost.setCurrentActor(0);
        Vm vm;
        vm.run(ca.work, frame, &in, &out, &cost, plans);
        return cost.totalCycles();
    };
    double scalar = runCost(nullptr);
    Executor::LoopPlans plans;
    plans[enter->lane] = LoopCostPlan{4, 0.0};
    double planned = runCost(&plans);
    EXPECT_LT(planned, scalar * 0.5);
    EXPECT_GT(planned, 0.0);
}

TEST(Bytecode, ZeroTripLoopSkipsBody)
{
    machine::MachineDesc m = machine::coreI7();
    graph::FilterBuilder f("ZeroTrip", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    auto i = f.local("i", kInt32);
    f.work().assign(x, f.pop());
    f.work().forLoop(i, 5, 5, [&](BlockBuilder& b) {
        b.assign(x, floatImm(-1.0f));
    });
    f.work().push(varRef(x));
    auto def = f.build();

    CompiledActor ca = bytecode::compileActor(*def, {&m});
    ActorFrame frame;
    frame.init(ca);
    Tape in(kFloat32), out(kFloat32);
    in.push(Value::makeFloat(7.0f));
    Vm vm;
    vm.run(ca.work, frame, &in, &out, nullptr, nullptr);
    EXPECT_FLOAT_EQ(out.pop().f(), 7.0f);
}

} // namespace
} // namespace macross::interp
