/**
 * @file
 * Differential tests of the two execution engines. The bytecode VM
 * must reproduce the tree-walking oracle exactly: bit-identical
 * captured output streams AND identical modeled cycle totals, on
 * every suite benchmark and a battery of random programs, under
 * scalar, macro-SIMDized, and SAGU-transposed configurations, and
 * with the modeled auto-vectorizers' loop cost plans installed.
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "autovec/gcc_like.h"
#include "autovec/icc_like.h"
#include "benchmarks/random_graph.h"
#include "benchmarks/suite.h"
#include "lowering/lowered.h"

namespace macross::interp {
namespace {

struct EngineRun {
    std::vector<Value> out;
    double cycles = 0.0;
};

enum class Autovec { None, Gcc, Icc };

EngineRun
runWith(const vectorizer::CompiledProgram& p,
        const machine::MachineDesc& m, ExecEngine engine,
        std::int64_t n, Autovec av = Autovec::None)
{
    machine::CostSink cost(m);
    Runner r(p.graph, p.schedule, &cost, EngineConfig(engine));
    if (av != Autovec::None) {
        lowering::LoweredProgram lp =
            lowering::lower(p.graph, p.schedule);
        auto result = av == Autovec::Gcc
                          ? autovec::gccAutovectorize(lp, m)
                          : autovec::iccAutovectorize(lp, m);
        for (auto& [id, cfg] : result.configs)
            r.setActorConfig(id, cfg);
    }
    r.runUntilCaptured(n);
    EngineRun run;
    run.out.assign(r.captured().begin(), r.captured().begin() + n);
    run.cycles = cost.totalCycles();
    return run;
}

/** The oracle property: same output bits, same modeled cycles. */
void
expectEnginesAgree(const vectorizer::CompiledProgram& p,
                   const machine::MachineDesc& m, std::int64_t n,
                   Autovec av = Autovec::None)
{
    EngineRun tree = runWith(p, m, ExecEngine::Tree, n, av);
    EngineRun vm = runWith(p, m, ExecEngine::Bytecode, n, av);
    testutil::expectSameStream(tree.out, vm.out);
    EXPECT_DOUBLE_EQ(tree.cycles, vm.cycles);
}

struct Config {
    const char* name;
    bool simdize;
    bool sagu;
};

const Config kConfigs[] = {
    {"scalar", false, false},
    {"macro", true, false},
    {"macro+sagu", true, true},
};

void
expectEnginesAgreeUnder(const graph::StreamPtr& program,
                        const Config& cfg, std::int64_t n)
{
    machine::MachineDesc m =
        cfg.sagu ? machine::coreI7WithSagu() : machine::coreI7();
    if (!cfg.simdize) {
        expectEnginesAgree(vectorizer::compileScalar(program), m, n);
        return;
    }
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = cfg.sagu;
    opts.machine = m;
    expectEnginesAgree(vectorizer::macroSimdize(program, opts), m, n);
}

class SuiteEngineDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteEngineDiff, BytecodeMatchesTreeOracle)
{
    auto [benchIdx, cfgIdx] = GetParam();
    auto suite = benchmarks::standardSuite();
    ASSERT_LT(static_cast<std::size_t>(benchIdx), suite.size());
    const auto& bench = suite[benchIdx];
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE(bench.name + std::string(" / ") + cfg.name);
    expectEnginesAgreeUnder(bench.program, cfg, 200);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, SuiteEngineDiff,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = benchmarks::standardSuite();
        std::string n = suite[std::get<0>(info.param)].name +
                        std::string("_") +
                        kConfigs[std::get<1>(info.param)].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

class RandomEngineDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomEngineDiff, BytecodeMatchesTreeOracle)
{
    auto [seedIdx, cfgIdx] = GetParam();
    std::uint64_t seed = 7000 + seedIdx;
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE("seed " + std::to_string(seed) + " / " + cfg.name);
    expectEnginesAgreeUnder(benchmarks::randomProgram(seed), cfg, 120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEngineDiff,
                         ::testing::Combine(::testing::Range(0, 16),
                                            ::testing::Range(0, 3)));

// The auto-vectorizer models modulate loop charging through the
// stable-loop-id plans; both engines must apply them identically.
TEST(EngineDiff, AutovecLoopPlansChargeIdentically)
{
    machine::MachineDesc m = machine::coreI7();
    for (auto maker : {benchmarks::makeDct, benchmarks::makeFft}) {
        auto p = vectorizer::compileScalar(maker());
        expectEnginesAgree(p, m, 200, Autovec::Gcc);
        expectEnginesAgree(p, m, 200, Autovec::Icc);
    }
}

// Engines can be mixed per actor: override half the filters to the
// tree oracle while the rest run bytecode; output must not change.
TEST(EngineDiff, PerActorEngineOverrideMixesCleanly)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    EngineRun pure = runWith(p, m, ExecEngine::Bytecode, 200);

    machine::CostSink cost(m);
    EngineConfig config(ExecEngine::Bytecode);
    for (const auto& a : p.graph.actors) {
        if (a.isFilter() && a.id % 2 == 0)
            config.actorEngines[a.id] = ExecEngine::Tree;
    }
    Runner r(p.graph, p.schedule, &cost, config);
    r.runUntilCaptured(200);
    std::vector<Value> mixed(r.captured().begin(),
                             r.captured().begin() + 200);
    testutil::expectSameStream(pure.out, mixed);
    EXPECT_DOUBLE_EQ(pure.cycles, cost.totalCycles());
}

} // namespace
} // namespace macross::interp
