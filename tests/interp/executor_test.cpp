/**
 * @file
 * Unit tests for the IR executor: arithmetic semantics, vector lanes,
 * control flow, and cost charging.
 */
#include "interp/executor.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "ir/analysis.h"
#include "ir/builder.h"

namespace macross::interp {
namespace {

using namespace ir;

VarPtr
makeVar(const std::string& name, Type t, int arr = 0,
        VarKind k = VarKind::Local)
{
    auto v = std::make_shared<Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    v->kind = k;
    return v;
}

struct Fixture {
    Env locals;
    Env state;
    Tape in{kFloat32};
    Tape out{kFloat32};
    machine::MachineDesc m = machine::coreI7();
    machine::CostSink cost{m};
    Executor ex{locals, state, &in, &out, &cost};
};

TEST(Executor, ScalarArithmetic)
{
    Fixture f;
    EXPECT_FLOAT_EQ(f.ex.eval(floatImm(2.0f) * floatImm(3.0f) +
                              floatImm(1.0f))
                        .f(),
                    7.0f);
    EXPECT_EQ(f.ex.eval(intImm(7) % intImm(3)).i(), 1);
    EXPECT_EQ(f.ex.eval(intImm(7) / intImm(2)).i(), 3);
    EXPECT_EQ(f.ex.eval(binary(BinaryOp::Shl, intImm(1), intImm(5))).i(),
              32);
    EXPECT_EQ(f.ex.eval(intImm(3) < intImm(4)).i(), 1);
    EXPECT_EQ(f.ex.eval(floatImm(3.0f) > floatImm(4.0f)).i(), 0);
}

TEST(Executor, DivisionByZeroPanics)
{
    Fixture f;
    EXPECT_THROW(f.ex.eval(intImm(1) / intImm(0)), PanicError);
    EXPECT_THROW(f.ex.eval(intImm(1) % intImm(0)), PanicError);
}

TEST(Executor, VectorLanewiseOps)
{
    Fixture f;
    ExprPtr a = vecImm(std::vector<float>{1, 2, 3, 4});
    ExprPtr b = vecImm(std::vector<float>{10, 20, 30, 40});
    Value v = f.ex.eval(a + b);
    for (int l = 0; l < 4; ++l)
        EXPECT_FLOAT_EQ(v.f(l), 11.0f * (l + 1));

    Value sp = f.ex.eval(splat(intImm(9), 4));
    for (int l = 0; l < 4; ++l)
        EXPECT_EQ(sp.i(l), 9);

    Value lr = f.ex.eval(laneRead(a, 2));
    EXPECT_FLOAT_EQ(lr.f(), 3.0f);
}

TEST(Executor, PermutationIntrinsics)
{
    Fixture f;
    ExprPtr a = vecImm(std::vector<std::int64_t>{0, 1, 2, 3});
    ExprPtr b = vecImm(std::vector<std::int64_t>{4, 5, 6, 7});
    Value ee = f.ex.eval(call(Intrinsic::ExtractEven, {a, b}));
    Value eo = f.ex.eval(call(Intrinsic::ExtractOdd, {a, b}));
    Value il = f.ex.eval(call(Intrinsic::InterleaveLo, {a, b}));
    Value ih = f.ex.eval(call(Intrinsic::InterleaveHi, {a, b}));
    const int eeExp[4] = {0, 2, 4, 6}, eoExp[4] = {1, 3, 5, 7};
    const int ilExp[4] = {0, 4, 1, 5}, ihExp[4] = {2, 6, 3, 7};
    for (int l = 0; l < 4; ++l) {
        EXPECT_EQ(ee.i(l), eeExp[l]);
        EXPECT_EQ(eo.i(l), eoExp[l]);
        EXPECT_EQ(il.i(l), ilExp[l]);
        EXPECT_EQ(ih.i(l), ihExp[l]);
    }
}

TEST(Executor, LoopsAndArrays)
{
    Fixture f;
    auto arr = makeVar("arr", kInt32, 8);
    auto i = makeVar("i", kInt32);
    auto sum = makeVar("sum", kInt32);
    BlockBuilder b;
    b.forLoop(i, 0, 8, [&](BlockBuilder& inner) {
        inner.store(arr, varRef(i), varRef(i) * intImm(2));
    });
    b.assign(sum, intImm(0));
    b.forLoop(i, 0, 8, [&](BlockBuilder& inner) {
        inner.assign(sum, varRef(sum) + load(arr, varRef(i)));
    });
    f.ex.run(b.stmts());
    EXPECT_EQ(f.locals.get(sum.get()).i(), 56);
}

TEST(Executor, IfElse)
{
    Fixture f;
    auto x = makeVar("x", kInt32);
    BlockBuilder b;
    b.assign(x, intImm(5));
    b.ifElse(varRef(x) > intImm(3),
             [&](BlockBuilder& t) { t.assign(x, intImm(1)); },
             [&](BlockBuilder& e) { e.assign(x, intImm(2)); });
    f.ex.run(b.stmts());
    EXPECT_EQ(f.locals.get(x.get()).i(), 1);
}

TEST(Executor, UnwrittenVariableReadPanics)
{
    Fixture f;
    auto x = makeVar("x", kInt32);
    EXPECT_THROW(f.ex.eval(varRef(x)), PanicError);
}

TEST(Executor, ArrayBoundsChecked)
{
    Fixture f;
    auto arr = makeVar("arr", kInt32, 4);
    BlockBuilder b;
    b.store(arr, intImm(4), intImm(1));
    EXPECT_THROW(f.ex.run(b.stmts()), PanicError);
}

TEST(Executor, CostChargingMatchesMachineTable)
{
    Fixture f;
    f.cost.setCurrentActor(0);
    (void)f.ex.eval(floatImm(1.0f) * floatImm(2.0f));
    EXPECT_DOUBLE_EQ(f.cost.totalCycles(),
                     f.m.costOf(machine::OpClass::FpMul));
    f.cost.reset();
    (void)f.ex.eval(call(Intrinsic::Sin, {floatImm(1.0f)}));
    EXPECT_DOUBLE_EQ(f.cost.totalCycles(),
                     f.m.costOf(machine::OpClass::Trig));
}

TEST(Executor, VectorOpCostsOnceUpToSimdWidth)
{
    Fixture f;
    ExprPtr a = vecImm(std::vector<float>{1, 2, 3, 4});
    (void)f.ex.eval(a + a);
    EXPECT_DOUBLE_EQ(f.cost.totalCycles(),
                     f.m.costOf(machine::OpClass::FpAdd));
}

TEST(Executor, LoopCostPlanChargesPerGroup)
{
    Fixture f;
    auto i = makeVar("i", kInt32);
    auto x = makeVar("x", kFloat32);
    BlockBuilder b;
    b.assign(x, floatImm(0.0f));
    b.forLoop(i, 0, 8, [&](BlockBuilder& inner) {
        inner.assign(x, varRef(x) * floatImm(1.5f));
    });
    auto stmts = b.stmts();

    // Uncosted baseline first.
    f.ex.run(stmts);
    double scalarCycles = f.cost.totalCycles();
    f.cost.reset();

    // Plans are keyed by stable loop id; the executor translates its
    // own For statements through the ir::numberLoops map.
    auto loopIds = ir::numberLoops(stmts);
    const Stmt* loop = stmts[1].get();
    Executor::LoopPlans plans;
    plans[loopIds.at(loop)] = LoopCostPlan{4, 0.0};
    f.ex.setLoopIds(&loopIds);
    f.ex.setLoopPlans(&plans);
    f.ex.run(stmts);
    double vecCycles = f.cost.totalCycles();
    // The body should be charged 2x instead of 8x (plus identical
    // non-loop parts), so roughly a quarter of the loop cost remains.
    EXPECT_LT(vecCycles, scalarCycles * 0.5);
    EXPECT_GT(vecCycles, 0.0);
}

} // namespace
} // namespace macross::interp
