/**
 * @file
 * Thread-count differential tests: the parallel runtime must be
 * indistinguishable from the single-threaded bytecode Runner — the
 * same captured output bits and the same modeled per-actor cycles —
 * at 1, 2, and 4 threads, on every suite benchmark and a battery of
 * random programs, under scalar, macro-SIMDized, and SAGU-transposed
 * configurations. Small batches force several batch barriers per run
 * so the cross-batch ring flush paths are on trial too.
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/random_graph.h"
#include "benchmarks/suite.h"
#include "interp/parallel_runner.h"
#include "multicore/partition.h"

namespace macross::interp {
namespace {

constexpr int kIters = 10;

struct SerialRun {
    std::vector<Value> out;
    std::vector<double> actorCycles;
    double attributed = 0.0;
};

SerialRun
runSerial(const vectorizer::CompiledProgram& p,
          const machine::MachineDesc& m)
{
    machine::CostSink cost(m);
    Runner r(p.graph, p.schedule, &cost,
             EngineConfig(ExecEngine::Bytecode));
    r.runInit();
    r.runSteady(kIters);
    SerialRun run;
    run.out = r.captured();
    run.actorCycles.resize(p.graph.actors.size());
    for (const auto& a : p.graph.actors)
        run.actorCycles[a.id] = cost.actorCycles(a.id);
    run.attributed = cost.attributedCycles();
    return run;
}

void
expectParallelMatchesSerial(const vectorizer::CompiledProgram& p,
                            const machine::MachineDesc& m)
{
    const SerialRun serial = runSerial(p, m);
    for (int threads : {1, 2, 4}) {
        SCOPED_TRACE(std::to_string(threads) + " threads");
        multicore::Partition part = multicore::partitionGreedy(
            p.graph, p.schedule, serial.actorCycles, threads);
        machine::CostSink cost(m);
        ParallelRunner::Options opt;
        opt.batchIterations = 4;  // 10 iters -> batches of 4, 4, 2.
        ParallelRunner pr(p.graph, p.schedule, part, &cost,
                          EngineConfig(ExecEngine::Bytecode), opt);
        pr.runInit();
        pr.runSteady(kIters);

        testutil::expectSameStream(serial.out, pr.captured());
        for (const auto& a : p.graph.actors)
            EXPECT_EQ(serial.actorCycles[a.id],
                      cost.actorCycles(a.id))
                << "actor " << a.id << " (" << a.name << ")";
        EXPECT_EQ(serial.attributed, pr.totalCycles());
    }
}

struct Config {
    const char* name;
    bool simdize;
    bool sagu;
};

const Config kConfigs[] = {
    {"scalar", false, false},
    {"macro", true, false},
    {"macro+sagu", true, true},
};

void
expectParallelMatchesUnder(const graph::StreamPtr& program,
                           const Config& cfg)
{
    machine::MachineDesc m =
        cfg.sagu ? machine::coreI7WithSagu() : machine::coreI7();
    if (!cfg.simdize) {
        expectParallelMatchesSerial(vectorizer::compileScalar(program),
                                    m);
        return;
    }
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = cfg.sagu;
    opts.machine = m;
    expectParallelMatchesSerial(vectorizer::macroSimdize(program, opts),
                                m);
}

class SuiteParallelDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteParallelDiff, ParallelMatchesSerialAtAllThreadCounts)
{
    auto [benchIdx, cfgIdx] = GetParam();
    auto suite = benchmarks::standardSuite();
    ASSERT_LT(static_cast<std::size_t>(benchIdx), suite.size());
    const auto& bench = suite[benchIdx];
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE(bench.name + std::string(" / ") + cfg.name);
    expectParallelMatchesUnder(bench.program, cfg);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, SuiteParallelDiff,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = benchmarks::standardSuite();
        std::string n = suite[std::get<0>(info.param)].name +
                        std::string("_") +
                        kConfigs[std::get<1>(info.param)].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

class RandomParallelDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomParallelDiff, ParallelMatchesSerialAtAllThreadCounts)
{
    auto [seedIdx, cfgIdx] = GetParam();
    std::uint64_t seed = 9000 + seedIdx;
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE("seed " + std::to_string(seed) + " / " + cfg.name);
    expectParallelMatchesUnder(benchmarks::randomProgram(seed), cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParallelDiff,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 3)));

} // namespace
} // namespace macross::interp
