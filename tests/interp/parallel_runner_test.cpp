/**
 * @file
 * Unit tests for the parallel steady-state runtime: deterministic
 * CostSink merging, basic multithreaded execution against the serial
 * runner, stats reporting, and repeated-run accumulation.
 */
#include "interp/parallel_runner.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "machine/machine_desc.h"

namespace macross::interp {
namespace {

std::vector<double>
profileActorCycles(const vectorizer::CompiledProgram& p,
                   const machine::MachineDesc& m, int iters = 8)
{
    machine::CostSink cost(m);
    Runner r(p.graph, p.schedule, &cost);
    r.runInit();
    r.runSteady(iters);
    std::vector<double> out(p.graph.actors.size(), 0.0);
    for (const auto& a : p.graph.actors)
        out[a.id] = cost.actorCycles(a.id);
    return out;
}

TEST(CostSinkMerge, AttributedCyclesSumsActorCells)
{
    machine::MachineDesc m = machine::coreI7();
    machine::CostSink s(m);
    s.setCurrentActor(0);
    s.charge(machine::OpClass::IntAlu);
    s.setCurrentActor(2);
    s.charge(machine::OpClass::ScalarLoad, 1, 3);
    EXPECT_EQ(s.attributedCycles(),
              s.actorCycles(0) + s.actorCycles(2));
    EXPECT_EQ(s.attributedCycles(), s.totalCycles());
}

TEST(CostSinkMerge, DisjointUnionIsOrderIndependent)
{
    machine::MachineDesc m = machine::coreI7();
    machine::CostSink a(m);
    a.setCurrentActor(0);
    a.charge(machine::OpClass::IntAlu, 1, 7);
    a.setCurrentActor(3);
    a.charge(machine::OpClass::FpMul, 4, 2);
    machine::CostSink b(m);
    b.setCurrentActor(1);
    b.charge(machine::OpClass::ScalarLoad, 1, 5);
    b.chargeCycles(2.5);

    machine::CostSink ab(m);
    ab.assignDisjointUnion({&a, &b});
    machine::CostSink ba(m);
    ba.assignDisjointUnion({&b, &a});

    EXPECT_EQ(ab.totalCycles(), ba.totalCycles());
    EXPECT_EQ(ab.totalCycles(), ab.attributedCycles());
    for (int id = 0; id < 4; ++id) {
        EXPECT_EQ(ab.actorCycles(id), ba.actorCycles(id));
        EXPECT_EQ(ab.actorClassCycles(id, machine::OpClass::IntAlu),
                  ba.actorClassCycles(id, machine::OpClass::IntAlu));
    }
    const int alu = static_cast<int>(machine::OpClass::IntAlu);
    EXPECT_EQ(ab.classOps()[alu], 7);
    EXPECT_EQ(ab.actorCycles(1), b.actorCycles(1));
}

TEST(CostSinkMerge, OverlappingActorsPanic)
{
    machine::MachineDesc m = machine::coreI7();
    machine::CostSink a(m);
    a.setCurrentActor(1);
    a.charge(machine::OpClass::IntAlu);
    machine::CostSink b(m);
    b.setCurrentActor(1);
    b.charge(machine::OpClass::IntAlu);
    machine::CostSink out(m);
    EXPECT_THROW(out.assignDisjointUnion({&a, &b}), PanicError);
}

TEST(ParallelRunner, MatchesSerialOutputOnTwoThreads)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();

    machine::CostSink serialCost(m);
    Runner serial(p.graph, p.schedule, &serialCost);
    serial.runInit();
    serial.runSteady(12);

    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 2);
    machine::CostSink parCost(m);
    ParallelRunner::Options opt;
    opt.batchIterations = 5;  // Exercise batch barriers: 5 + 5 + 2.
    ParallelRunner pr(p.graph, p.schedule, part, &parCost,
                      EngineConfig(ExecEngine::Bytecode), opt);
    pr.runInit();
    pr.runSteady(12);

    testutil::expectSameStream(serial.captured(), pr.captured());
    for (const auto& a : p.graph.actors)
        EXPECT_EQ(serialCost.actorCycles(a.id),
                  parCost.actorCycles(a.id));
    EXPECT_EQ(serialCost.attributedCycles(), parCost.totalCycles());
}

TEST(ParallelRunner, RepeatedRunsAccumulateLikeSerial)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFilterBank());
    machine::MachineDesc m = machine::coreI7();

    machine::CostSink serialCost(m);
    Runner serial(p.graph, p.schedule, &serialCost);
    serial.runInit();
    serial.runSteady(3);
    serial.runSteady(4);

    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 4);
    machine::CostSink parCost(m);
    ParallelRunner pr(p.graph, p.schedule, part, &parCost);
    pr.runInit();
    pr.runSteady(3);
    pr.runSteady(4);

    testutil::expectSameStream(serial.captured(), pr.captured());
    EXPECT_EQ(serialCost.attributedCycles(), parCost.totalCycles());
}

TEST(ParallelRunner, RunUntilCapturedDeliversEnough)
{
    auto p = vectorizer::compileScalar(benchmarks::makeDct());
    machine::MachineDesc m = machine::coreI7();
    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 2);
    ParallelRunner pr(p.graph, p.schedule, part);
    pr.runUntilCaptured(100);
    EXPECT_GE(static_cast<std::int64_t>(pr.captured().size()), 100);
}

TEST(ParallelRunner, StatsReportParallelSection)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 2);
    machine::CostSink cost(m);
    ParallelRunner pr(p.graph, p.schedule, part, &cost);
    pr.runInit();
    pr.runSteady(4);
    pr.setBaselineWallMicros(1000.0);

    json::Value stats = pr.statsToJson();
    ASSERT_TRUE(stats.contains("parallel"));
    const json::Value& par = *stats.find("parallel");
    EXPECT_EQ(par.find("threads")->asInt(), 2);
    EXPECT_EQ(par.find("coreLoad")->size(), 2u);
    EXPECT_EQ(par.find("coreOf")->size(), p.graph.actors.size());
    ASSERT_TRUE(par.contains("rings"));
    ASSERT_TRUE(par.contains("measuredSpeedup"));
    EXPECT_GT(par.find("measuredSpeedup")->asDouble(), 0.0);
    // The dispatcher satellite: the VM records which dispatch loop
    // this build runs.
    ASSERT_TRUE(stats.contains("vmDispatcher"));
    std::string d = stats.find("vmDispatcher")->asString();
    EXPECT_EQ(d, vmDispatcherName());
    EXPECT_TRUE(d == "computed-goto" || d == "switch");
}

TEST(ParallelRunner, SingleCoreNeedsNoRings)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 1);
    ParallelRunner pr(p.graph, p.schedule, part);
    pr.runInit();
    pr.runSteady(5);
    json::Value stats = pr.statsToJson();
    // One worker, no cross-core tapes: the rings array is empty.
    EXPECT_EQ(stats.find("parallel")->find("rings")->size(), 0u);
    for (std::size_t i = 0; i < p.graph.tapes.size(); ++i)
        EXPECT_FALSE(pr.runner().tapeAt(static_cast<int>(i))
                         .ringBacked());
}

TEST(ParallelRunner, RejectsBadPartition)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    multicore::Partition part;
    part.cores = 2;
    part.coreOf.assign(p.graph.actors.size() - 1, 0);  // Too short.
    part.coreLoad.assign(2, 0.0);
    EXPECT_THROW(ParallelRunner(p.graph, p.schedule, part),
                 FatalError);
}

} // namespace
} // namespace macross::interp
