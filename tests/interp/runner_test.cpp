/**
 * @file
 * Unit tests for the program runner: end-to-end execution of flat
 * graphs, sink capture, splitter/joiner semantics.
 */
#include "interp/runner.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "benchmarks/common.h"
#include "vectorizer/pipeline.h"

namespace macross::interp {
namespace {

using namespace graph;
using benchmarks::floatSink;
using benchmarks::floatSource;
using benchmarks::gain;
using benchmarks::identity;

std::vector<float>
runAndCapture(const StreamPtr& program, std::int64_t n)
{
    auto compiled = vectorizer::compileScalar(program);
    Runner r(compiled.graph, compiled.schedule);
    r.runUntilCaptured(n);
    std::vector<float> out;
    for (std::int64_t i = 0; i < n; ++i)
        out.push_back(r.captured()[i].f());
    return out;
}

TEST(Runner, GainPipelineScalesSource)
{
    auto doubled = runAndCapture(pipeline({
        filterStream(floatSource("src", 4, 5)),
        filterStream(gain("g", 2.0f)),
        filterStream(floatSink("snk", 1)),
    }), 32);
    auto plain = runAndCapture(pipeline({
        filterStream(floatSource("src", 4, 5)),
        filterStream(floatSink("snk", 1)),
    }), 32);
    for (int i = 0; i < 32; ++i)
        EXPECT_FLOAT_EQ(doubled[i], plain[i] * 2.0f);
}

TEST(Runner, RoundRobinSplitJoinPreservesOrderWithIdentities)
{
    // rr-split into identities and rr-join must be the identity.
    auto split = runAndCapture(pipeline({
        filterStream(floatSource("src", 4, 9)),
        splitJoinRoundRobin({2, 2},
                            {filterStream(identity("a")),
                             filterStream(identity("b"))},
                            {2, 2}),
        filterStream(floatSink("snk", 1)),
    }), 64);
    auto direct = runAndCapture(pipeline({
        filterStream(floatSource("src", 4, 9)),
        filterStream(floatSink("snk", 1)),
    }), 64);
    EXPECT_EQ(split, direct);
}

TEST(Runner, DuplicateSplitterCopiesToAllBranches)
{
    // duplicate -> (x1, x2) -> join(1,1): output alternates x and 2x.
    auto out = runAndCapture(pipeline({
        filterStream(floatSource("src", 1, 3)),
        splitJoinDuplicate({filterStream(gain("one", 1.0f)),
                            filterStream(gain("two", 2.0f))},
                           {1, 1}),
        filterStream(floatSink("snk", 1)),
    }), 32);
    for (int i = 0; i + 1 < 32; i += 2)
        EXPECT_FLOAT_EQ(out[i + 1], out[i] * 2.0f);
}

TEST(Runner, CapturedStreamIsDeterministic)
{
    auto a = runAndCapture(pipeline({
                               filterStream(floatSource("s", 2, 77)),
                               filterStream(floatSink("k", 1)),
                           }),
                           16);
    auto b = runAndCapture(pipeline({
                               filterStream(floatSource("s", 2, 77)),
                               filterStream(floatSink("k", 1)),
                           }),
                           16);
    EXPECT_EQ(a, b);
}

TEST(Runner, CyclesAccumulatePerActor)
{
    auto compiled = vectorizer::compileScalar(pipeline({
        filterStream(floatSource("src", 2, 5)),
        filterStream(gain("g", 2.0f)),
        filterStream(floatSink("snk", 2)),
    }));
    machine::MachineDesc m = machine::coreI7();
    machine::CostSink cost(m);
    Runner r(compiled.graph, compiled.schedule, &cost);
    r.runInit();
    EXPECT_DOUBLE_EQ(cost.totalCycles(), 0.0);  // init is uncosted
    r.runSteady(10);
    EXPECT_GT(cost.totalCycles(), 0.0);
    double sum = 0.0;
    for (const auto& a : compiled.graph.actors)
        sum += cost.actorCycles(a.id);
    EXPECT_DOUBLE_EQ(sum, cost.totalCycles());
}

TEST(Runner, RunUntilCapturedFailsOnStarvedSink)
{
    auto compiled = vectorizer::compileScalar(pipeline({
        filterStream(floatSource("src", 1, 5)),
        filterStream(floatSink("snk", 1)),
    }));
    Runner r(compiled.graph, compiled.schedule);
    EXPECT_THROW(r.runUntilCaptured(1000, /*max_iters=*/2),
                 FatalError);
}

} // namespace
} // namespace macross::interp
