/**
 * @file
 * Unit tests for the lock-free SPSC ring backing cross-core tapes:
 * capacity rounding, publication granularity, and actual two-thread
 * transfer through both the raw ring and a ring-backed Tape.
 */
#include "interp/spsc_queue.h"

#include <gtest/gtest.h>

#include <thread>

#include "interp/tape.h"

namespace macross::interp {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing(1).capacity(), 2);
    EXPECT_EQ(SpscRing(2).capacity(), 2);
    EXPECT_EQ(SpscRing(3).capacity(), 4);
    EXPECT_EQ(SpscRing(64).capacity(), 64);
    EXPECT_EQ(SpscRing(65).capacity(), 128);
    // Capacity must hold at least two publication blocks.
    EXPECT_EQ(SpscRing(1, 8, 1).capacity(), 16);
    EXPECT_EQ(SpscRing(1, 1, 16).capacity(), 32);
}

TEST(SpscRing, SingleThreadFifo)
{
    SpscRing r(8);
    for (std::int64_t i = 0; i < 100; ++i) {
        r.waitWritable(i);
        r.slot(i) = static_cast<std::uint32_t>(i * 3);
        r.publishTail(i + 1);
        EXPECT_EQ(r.publishedSize(i), 1);
        r.waitReadable(i);
        EXPECT_EQ(r.slot(i), static_cast<std::uint32_t>(i * 3));
        r.publishHead(i + 1);
    }
}

TEST(SpscRing, BlockFlooredTailPublication)
{
    SpscRing r(32, 1, 4);
    // A partial tail block stays invisible...
    r.slot(0) = 10;
    r.slot(1) = 11;
    r.publishTail(2);
    EXPECT_EQ(r.publishedSize(0), 0);
    // ...until the block completes...
    r.slot(2) = 12;
    r.slot(3) = 13;
    r.publishTail(4);
    EXPECT_EQ(r.publishedSize(0), 4);
    // ...or a barrier forces the residue out.
    r.slot(4) = 14;
    r.publishTail(5);
    EXPECT_EQ(r.publishedSize(0), 4);
    r.publishTailExact(5);
    EXPECT_EQ(r.publishedSize(0), 5);
}

TEST(SpscRing, TwoThreadTransferPreservesSequence)
{
    // Deliberately tiny ring so the producer wraps many times and
    // must repeatedly wait for the consumer.
    SpscRing r(16);
    constexpr std::int64_t kN = 200000;
    std::thread producer([&] {
        for (std::int64_t i = 0; i < kN; ++i) {
            r.waitWritable(i);
            r.slot(i) = static_cast<std::uint32_t>(i);
            r.publishTail(i + 1);
        }
    });
    std::int64_t bad = 0;
    for (std::int64_t i = 0; i < kN; ++i) {
        r.waitReadable(i);
        if (r.slot(i) != static_cast<std::uint32_t>(i))
            ++bad;
        r.publishHead(i + 1);
    }
    producer.join();
    EXPECT_EQ(bad, 0);
}

TEST(SpscRing, RingBackedTapeKeepsFifoSemantics)
{
    // Single-threaded, so the ring must hold the full backlog: nobody
    // would release slots while the producer waits.
    SpscRing ring(512);
    Tape t(ir::kInt32);
    t.setRing(&ring);
    for (int i = 0; i < 500; ++i)
        t.push(Value::makeInt(i));
    EXPECT_EQ(t.available(), 500);
    EXPECT_EQ(t.peek(2).i(), 2);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(t.pop().i(), i);
    EXPECT_EQ(t.available(), 0);
    EXPECT_EQ(t.totalPushed(), 500);
}

TEST(SpscRing, RingBackedTapeTwoThreads)
{
    SpscRing ring(32);
    Tape t(ir::kInt32);
    t.setRing(&ring);
    constexpr int kN = 50000;
    // The producer thread owns the push endpoint, the main thread the
    // pop endpoint — exactly the parallel runner's tape ownership.
    std::thread producer([&] {
        for (int i = 0; i < kN; ++i)
            t.push(Value::makeInt(i));
        t.flushRingTail();
    });
    int bad = 0;
    for (int i = 0; i < kN; ++i) {
        if (t.pop().i() != i)
            ++bad;
    }
    t.flushRingHead();
    producer.join();
    EXPECT_EQ(bad, 0);
}

TEST(SpscRing, SetRingAfterTrafficPanics)
{
    SpscRing ring(64);
    Tape t(ir::kInt32);
    t.push(Value::makeInt(1));
    EXPECT_THROW(t.setRing(&ring), PanicError);
}

} // namespace
} // namespace macross::interp
