/**
 * @file
 * Unit tests for the lock-free SPSC ring backing cross-core tapes:
 * capacity rounding, publication granularity, actual two-thread
 * transfer through both the raw ring and a ring-backed Tape, and the
 * publication invariants (driven through fault injection, so the
 * production fire() sites are what corrupts the indexes).
 */
#include "interp/spsc_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "interp/tape.h"
#include "support/fault.h"

namespace macross::interp {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing(1).capacity(), 2);
    EXPECT_EQ(SpscRing(2).capacity(), 2);
    EXPECT_EQ(SpscRing(3).capacity(), 4);
    EXPECT_EQ(SpscRing(64).capacity(), 64);
    EXPECT_EQ(SpscRing(65).capacity(), 128);
    // Capacity must hold at least two publication blocks.
    EXPECT_EQ(SpscRing(1, 8, 1).capacity(), 16);
    EXPECT_EQ(SpscRing(1, 1, 16).capacity(), 32);
}

TEST(SpscRing, SingleThreadFifo)
{
    SpscRing r(8);
    for (std::int64_t i = 0; i < 100; ++i) {
        r.waitWritable(i);
        r.slot(i) = static_cast<std::uint32_t>(i * 3);
        r.publishTail(i + 1);
        EXPECT_EQ(r.publishedSize(i), 1);
        r.waitReadable(i);
        EXPECT_EQ(r.slot(i), static_cast<std::uint32_t>(i * 3));
        r.publishHead(i + 1);
    }
}

TEST(SpscRing, BlockFlooredTailPublication)
{
    SpscRing r(32, 1, 4);
    // A partial tail block stays invisible...
    r.slot(0) = 10;
    r.slot(1) = 11;
    r.publishTail(2);
    EXPECT_EQ(r.publishedSize(0), 0);
    // ...until the block completes...
    r.slot(2) = 12;
    r.slot(3) = 13;
    r.publishTail(4);
    EXPECT_EQ(r.publishedSize(0), 4);
    // ...or a barrier forces the residue out.
    r.slot(4) = 14;
    r.publishTail(5);
    EXPECT_EQ(r.publishedSize(0), 4);
    r.publishTailExact(5);
    EXPECT_EQ(r.publishedSize(0), 5);
}

TEST(SpscRing, TwoThreadTransferPreservesSequence)
{
    // Deliberately tiny ring so the producer wraps many times and
    // must repeatedly wait for the consumer.
    SpscRing r(16);
    constexpr std::int64_t kN = 200000;
    std::thread producer([&] {
        for (std::int64_t i = 0; i < kN; ++i) {
            r.waitWritable(i);
            r.slot(i) = static_cast<std::uint32_t>(i);
            r.publishTail(i + 1);
        }
    });
    std::int64_t bad = 0;
    for (std::int64_t i = 0; i < kN; ++i) {
        r.waitReadable(i);
        if (r.slot(i) != static_cast<std::uint32_t>(i))
            ++bad;
        r.publishHead(i + 1);
    }
    producer.join();
    EXPECT_EQ(bad, 0);
}

TEST(SpscRing, RingBackedTapeKeepsFifoSemantics)
{
    // Single-threaded, so the ring must hold the full backlog: nobody
    // would release slots while the producer waits.
    SpscRing ring(512);
    Tape t(ir::kInt32);
    t.setRing(&ring);
    for (int i = 0; i < 500; ++i)
        t.push(Value::makeInt(i));
    EXPECT_EQ(t.available(), 500);
    EXPECT_EQ(t.peek(2).i(), 2);
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(t.pop().i(), i);
    EXPECT_EQ(t.available(), 0);
    EXPECT_EQ(t.totalPushed(), 500);
}

TEST(SpscRing, RingBackedTapeTwoThreads)
{
    SpscRing ring(32);
    Tape t(ir::kInt32);
    t.setRing(&ring);
    constexpr int kN = 50000;
    // The producer thread owns the push endpoint, the main thread the
    // pop endpoint — exactly the parallel runner's tape ownership.
    std::thread producer([&] {
        for (int i = 0; i < kN; ++i)
            t.push(Value::makeInt(i));
        t.flushRingTail();
    });
    int bad = 0;
    for (int i = 0; i < kN; ++i) {
        if (t.pop().i() != i)
            ++bad;
    }
    t.flushRingHead();
    producer.join();
    EXPECT_EQ(bad, 0);
}

TEST(SpscRing, SetRingAfterTrafficPanics)
{
    SpscRing ring(64);
    Tape t(ir::kInt32);
    t.push(Value::makeInt(1));
    EXPECT_THROW(t.setRing(&ring), PanicError);
}

/** Fixture that always leaves the global fault registry clean. */
class SpscInvariants : public ::testing::Test {
  protected:
    void SetUp() override { support::FaultInjector::instance().reset(); }
    void TearDown() override
    {
        support::FaultInjector::instance().reset();
    }

    /** Run @p fn, assert it panics, and return the panic text. */
    template <typename Fn>
    std::string panicText(Fn&& fn)
    {
        try {
            fn();
        } catch (const PanicError& e) {
            return e.what();
        }
        ADD_FAILURE() << "expected a PanicError";
        return "";
    }
};

TEST_F(SpscInvariants, TailRetreatPanicsWithRingState)
{
    SpscRing r(8);
    for (std::int64_t i = 0; i < 4; ++i)
        r.slot(i) = static_cast<std::uint32_t>(i);
    r.publishTail(4);
    // The injected fault rolls the published index backwards — the
    // corruption a miscompiled flush or memory stomp would produce.
    support::FaultInjector::instance().arm(
        "spsc.publishTailExact", [](std::int64_t* v) { *v -= 3; });
    std::string msg = panicText([&] { r.publishTailExact(4); });
    EXPECT_NE(msg.find("tail retreated"), std::string::npos) << msg;
    EXPECT_NE(msg.find("capacity 8"), std::string::npos) << msg;
    EXPECT_EQ(support::FaultInjector::instance().fireCount(
                  "spsc.publishTailExact"),
              1);
}

TEST_F(SpscInvariants, ProducerOverrunPanicsWithRingState)
{
    SpscRing r(8);
    support::FaultInjector::instance().arm(
        "spsc.publishTailExact",
        [&r](std::int64_t* v) { *v += r.capacity() + 5; });
    std::string msg = panicText([&] { r.publishTailExact(1); });
    EXPECT_NE(msg.find("overran the consumer"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("capacity 8"), std::string::npos) << msg;
}

TEST_F(SpscInvariants, HeadRetreatPanicsWithRingState)
{
    SpscRing r(8);
    for (std::int64_t i = 0; i < 6; ++i)
        r.slot(i) = 0;
    r.publishTail(6);
    r.waitReadable(5);  // Refresh the consumer's cached tail.
    r.publishHead(4);
    support::FaultInjector::instance().arm(
        "spsc.publishHeadExact", [](std::int64_t* v) { *v = 1; });
    std::string msg = panicText([&] { r.publishHeadExact(4); });
    EXPECT_NE(msg.find("head retreated"), std::string::npos) << msg;
}

TEST_F(SpscInvariants, OverReleasePanicsWithRingState)
{
    SpscRing r(8);
    // Nothing published: releasing element 1 releases data the
    // producer never made visible.
    support::FaultInjector::instance().arm(
        "spsc.publishHeadExact", [](std::int64_t* v) { *v += 1; });
    std::string msg = panicText([&] { r.publishHeadExact(0); });
    EXPECT_NE(msg.find("released unpublished data"), std::string::npos)
        << msg;
}

TEST_F(SpscInvariants, CleanPublicationDoesNotTripTheChecks)
{
    // The invariant checks must be invisible on a healthy ring, fault
    // sites armed or not.
    SpscRing r(8);
    for (std::int64_t i = 0; i < 100; ++i) {
        r.waitWritable(i);
        r.slot(i) = static_cast<std::uint32_t>(i);
        r.publishTailExact(i + 1);
        r.waitReadable(i);
        r.publishHeadExact(i + 1);
    }
    SUCCEED();
}

TEST_F(SpscInvariants, AbortWaitsTurnsBlockedWaitIntoPromptPanic)
{
    SpscRing r(8);
    r.abortWaits();
    // Nothing published: without the abort this wait would spin
    // toward the 120 s timeout; with it, it must panic promptly.
    std::string msg = panicText([&] { r.waitReadable(0); });
    EXPECT_NE(msg.find("aborted during shutdown"), std::string::npos)
        << msg;
}

} // namespace
} // namespace macross::interp
