/**
 * @file
 * Unit tests for the tape runtime, including the Section 3.1 rpush /
 * advance discipline and the SAGU transposed layout.
 */
#include "interp/tape.h"

#include <gtest/gtest.h>

#include "machine/sagu.h"
#include "support/diagnostics.h"

namespace macross::interp {
namespace {

Value
fv(float x)
{
    return Value::makeFloat(x);
}

TEST(Tape, FifoOrder)
{
    Tape t(ir::kFloat32);
    t.push(fv(1));
    t.push(fv(2));
    t.push(fv(3));
    EXPECT_EQ(t.available(), 3);
    EXPECT_FLOAT_EQ(t.pop().f(), 1);
    EXPECT_FLOAT_EQ(t.peek(1).f(), 3);
    EXPECT_FLOAT_EQ(t.pop().f(), 2);
    EXPECT_EQ(t.available(), 1);
}

TEST(Tape, PopEmptyPanics)
{
    Tape t(ir::kFloat32);
    EXPECT_THROW(t.pop(), PanicError);
    t.push(fv(1));
    EXPECT_THROW(t.peek(1), PanicError);
}

TEST(Tape, RPushWriteAheadPublishedByAdvance)
{
    // The SIMDized-push pattern of Figure 3b: strided rpush writes,
    // interleaved pointer-advancing pushes, then AdvanceOut.
    Tape t(ir::kFloat32);
    // First original push (lane values 10,11,12,13 at stride 2).
    t.rpush(fv(13), 6);
    t.rpush(fv(12), 4);
    t.rpush(fv(11), 2);
    t.push(fv(10));
    // Second original push (lane values 20..23).
    t.rpush(fv(23), 6);
    t.rpush(fv(22), 4);
    t.rpush(fv(21), 2);
    t.push(fv(20));
    t.advanceOut(6);
    EXPECT_EQ(t.available(), 8);
    const float expected[8] = {10, 20, 11, 21, 12, 22, 13, 23};
    for (float e : expected)
        EXPECT_FLOAT_EQ(t.pop().f(), e);
}

TEST(Tape, VectorAccessesAreContiguous)
{
    Tape t(ir::kFloat32);
    for (int i = 0; i < 8; ++i)
        t.push(fv(static_cast<float>(i)));
    Value v = t.vpeek(2, 4);
    for (int l = 0; l < 4; ++l)
        EXPECT_FLOAT_EQ(v.f(l), 2.0f + l);
    Value w = t.vpop(4);
    for (int l = 0; l < 4; ++l)
        EXPECT_FLOAT_EQ(w.f(l), static_cast<float>(l));
    EXPECT_EQ(t.available(), 4);

    Tape o(ir::kFloat32);
    o.vpush(v);
    EXPECT_EQ(o.available(), 4);
    EXPECT_FLOAT_EQ(o.pop().f(), 2.0f);
}

TEST(Tape, AdvanceInBoundsChecked)
{
    Tape t(ir::kFloat32);
    t.push(fv(1));
    EXPECT_THROW(t.advanceIn(2), PanicError);
    t.advanceIn(1);
    EXPECT_EQ(t.available(), 0);
}

TEST(Tape, ReadTransposeMatchesSaguWalk)
{
    // Producer is "vectorized": writes the transposed layout via
    // plain vector pushes; the scalar consumer pops in logical order
    // through the transpose map. rate=3, SW=4.
    const int rate = 3, sw = 4;
    Tape t(ir::kFloat32);
    t.setReadTranspose(TransposeSpec{true, rate, sw});
    // The vector producer writes 3 vectors; vector j holds lane f =
    // logical element f*rate + j.
    for (int j = 0; j < rate; ++j) {
        Value v = Value::zero(ir::Type{ir::Scalar::Float32, sw});
        for (int f = 0; f < sw; ++f)
            v.setF(f, static_cast<float>(f * rate + j));
        t.vpush(v);
    }
    // The consumer must observe 0,1,2,...,11 in order.
    for (int i = 0; i < rate * sw; ++i)
        EXPECT_FLOAT_EQ(t.pop().f(), static_cast<float>(i));
}

TEST(Tape, WriteTransposeMatchesVectorConsumer)
{
    const int rate = 3, sw = 4;
    Tape t(ir::kFloat32);
    t.setWriteTranspose(TransposeSpec{true, rate, sw});
    // Scalar producer pushes logical order 0..11.
    for (int i = 0; i < rate * sw; ++i)
        t.push(fv(static_cast<float>(i)));
    // The vectorized consumer's j-th vpop must be the pack of pop
    // site j: lanes {j, rate + j, 2*rate + j, 3*rate + j}.
    for (int j = 0; j < rate; ++j) {
        Value v = t.vpop(sw);
        for (int f = 0; f < sw; ++f)
            EXPECT_FLOAT_EQ(v.f(f), static_cast<float>(f * rate + j));
    }
}

TEST(Tape, TransposeGuards)
{
    Tape t(ir::kFloat32);
    t.setWriteTranspose(TransposeSpec{true, 2, 4});
    EXPECT_THROW(t.rpush(fv(1), 0), PanicError);
    Value v = Value::zero(ir::Type{ir::Scalar::Float32, 4});
    EXPECT_THROW(t.vpush(v), PanicError);
}

TEST(Tape, CaptureBufferSeesConsumptionOrder)
{
    Tape t(ir::kFloat32);
    std::vector<Value> seen;
    t.setCaptureBuffer(&seen);
    for (int i = 0; i < 6; ++i)
        t.push(fv(static_cast<float>(i)));
    t.pop();
    t.vpop(4);
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_FLOAT_EQ(seen[i].f(), static_cast<float>(i));

    // Detaching stops capture; raw pops feed the same buffer while
    // attached. Element 5 is still queued from the pushes above.
    t.setCaptureBuffer(nullptr);
    t.pop();
    EXPECT_EQ(seen.size(), 5u);
    t.setCaptureBuffer(&seen);
    t.push(fv(6.0f));
    (void)t.popRaw();
    ASSERT_EQ(seen.size(), 6u);
    EXPECT_FLOAT_EQ(seen[5].f(), 6.0f);
}

TEST(Tape, CompactionPreservesContents)
{
    Tape t(ir::kInt32);
    // Push/pop far past the compaction threshold.
    std::int64_t next = 0;
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 5000; ++i)
            t.push(Value::makeInt(static_cast<std::int32_t>(next + i)));
        for (int i = 0; i < 5000; ++i) {
            ASSERT_EQ(t.pop().i(), next + i);
        }
        next += 5000;
    }
    EXPECT_EQ(t.totalPushed(), 200000);
}

} // namespace
} // namespace macross::interp
