/**
 * @file
 * Unit tests for the Value model and variable environments.
 */
#include "interp/env.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::interp {
namespace {

ir::VarPtr
makeVar(const std::string& name, ir::Type t, int arr = 0,
        ir::VarKind k = ir::VarKind::Local)
{
    auto v = std::make_shared<ir::Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    v->kind = k;
    return v;
}

TEST(Value, ScalarConstructionAndEquality)
{
    Value a = Value::makeInt(42);
    Value b = Value::makeInt(42);
    Value c = Value::makeFloat(42.0f);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);  // types differ even if bits could match
    EXPECT_EQ(a.i(), 42);
    EXPECT_FLOAT_EQ(c.f(), 42.0f);
}

TEST(Value, LaneAccessAndExtraction)
{
    Value v = Value::zero(ir::Type{ir::Scalar::Float32, 4});
    for (int l = 0; l < 4; ++l)
        v.setF(l, 1.5f * l);
    Value lane2 = v.lane(2);
    EXPECT_EQ(lane2.lanes(), 1);
    EXPECT_FLOAT_EQ(lane2.f(), 3.0f);
    EXPECT_THROW(v.lane(4), PanicError);
}

TEST(Value, StringRendering)
{
    EXPECT_EQ(Value::makeInt(-3).str(), "-3");
    Value v = Value::zero(ir::Type{ir::Scalar::Int32, 2});
    v.setI(0, 1);
    v.setI(1, 2);
    EXPECT_EQ(v.str(), "{1, 2}");
}

TEST(Value, ZeroRespectsMaxLanes)
{
    EXPECT_NO_THROW(Value::zero(ir::Type{ir::Scalar::Int32, 16}));
    EXPECT_THROW(Value::zero(ir::Type{ir::Scalar::Int32, 17}),
                 PanicError);
}

TEST(Env, LocalReadBeforeWritePanics)
{
    Env env;
    auto local = makeVar("x", ir::kInt32);
    EXPECT_THROW(env.get(local.get()), PanicError);
    env.set(local.get(), Value::makeInt(1));
    EXPECT_EQ(env.get(local.get()).i(), 1);
}

TEST(Env, StateVarsZeroInitializeOnRead)
{
    // C++ field semantics: uninitialized state reads as zero, both in
    // the interpreter and in generated code.
    Env env;
    auto state =
        makeVar("acc", ir::kFloat32, 0, ir::VarKind::State);
    EXPECT_FLOAT_EQ(env.get(state.get()).f(), 0.0f);
}

TEST(Env, ArraysAllocateLazilyAndBoundsCheck)
{
    Env env;
    auto arr = makeVar("a", ir::kInt32, 4);
    EXPECT_EQ(env.getElem(arr.get(), 3).i(), 0);  // zero-filled
    env.setElem(arr.get(), 2, Value::makeInt(7));
    EXPECT_EQ(env.getElem(arr.get(), 2).i(), 7);
    EXPECT_THROW(env.getElem(arr.get(), 4), PanicError);
    EXPECT_THROW(env.setElem(arr.get(), -1, Value::makeInt(0)),
                 PanicError);
}

TEST(Env, ArrayAccessToScalarPanics)
{
    Env env;
    auto scalar = makeVar("s", ir::kInt32);
    EXPECT_THROW(env.getElem(scalar.get(), 0), PanicError);
}

TEST(Env, ClearDropsBindings)
{
    Env env;
    auto v = makeVar("x", ir::kInt32);
    env.set(v.get(), Value::makeInt(5));
    env.clear();
    EXPECT_FALSE(env.has(v.get()));
}

} // namespace
} // namespace macross::interp
