/**
 * @file
 * Unit tests for the bytecode verifier: clean compiled actors verify
 * empty, every catalogued corruption class is detected with the
 * matching error kind, and hand-built degenerate streams (bad opcode
 * bytes, lane overflow, frame mismatch) are rejected too.
 */
#include "interp/verify.h"

#include <gtest/gtest.h>

#include <cctype>

#include "benchmarks/common.h"
#include "interp/compile_actor.h"
#include "machine/machine_desc.h"

namespace macross::interp::bytecode {
namespace {

/** A compiled actor with loops, peeks, arrays, state, and charges. */
CompiledActor
compiledFir(graph::FilterDefPtr* def_out = nullptr)
{
    static graph::FilterDefPtr def =
        benchmarks::firFilter("fir", 8, 1, 0.3f);
    if (def_out)
        *def_out = def;
    static machine::MachineDesc m = machine::coreI7();
    CompileOptions opts;
    opts.machine = &m;
    return compileActor(*def, opts);
}

bool
hasKind(const std::vector<VerifyError>& errs, VerifyError::Kind k)
{
    for (const auto& e : errs) {
        if (e.kind == k)
            return true;
    }
    return false;
}

std::string
dump(const std::vector<VerifyError>& errs)
{
    std::string s;
    for (const auto& e : errs) {
        s += toString(e);
        s += "\n";
    }
    return s;
}

TEST(Verify, CleanCompiledActorHasNoFindings)
{
    graph::FilterDefPtr def;
    CompiledActor ca = compiledFir(&def);
    auto errs = verifyActor(ca, *def);
    EXPECT_TRUE(errs.empty()) << dump(errs);
}

/** One test per catalogued corruption: the injector must find a site
 *  in the FIR work body and the verifier must flag the matching kind. */
struct CorruptionCase {
    Corruption corruption;
    VerifyError::Kind expected;
};

class VerifyCorruption
    : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(VerifyCorruption, InjectedFaultIsDetected)
{
    graph::FilterDefPtr def;
    CompiledActor ca = compiledFir(&def);
    std::string what =
        injectCorruption(ca.work, GetParam().corruption);
    ASSERT_FALSE(what.empty())
        << "no injection site for this corruption in the FIR body";
    auto errs = verifyActor(ca, *def);
    ASSERT_FALSE(errs.empty()) << "corruption not detected: " << what;
    EXPECT_TRUE(hasKind(errs, GetParam().expected))
        << "after '" << what << "' expected "
        << toString(GetParam().expected) << ", got:\n"
        << dump(errs);
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, VerifyCorruption,
    ::testing::Values(
        CorruptionCase{Corruption::BadRegister,
                       VerifyError::Kind::BadRegister},
        CorruptionCase{Corruption::BadSlot, VerifyError::Kind::BadSlot},
        CorruptionCase{Corruption::BadArray,
                       VerifyError::Kind::BadArray},
        CorruptionCase{Corruption::BadConst,
                       VerifyError::Kind::BadConst},
        CorruptionCase{Corruption::BadCharge,
                       VerifyError::Kind::BadCharge},
        CorruptionCase{Corruption::BadBranch,
                       VerifyError::Kind::BadBranch},
        CorruptionCase{Corruption::BadLoop, VerifyError::Kind::BadLoop},
        CorruptionCase{Corruption::Truncated,
                       VerifyError::Kind::Truncated},
        CorruptionCase{Corruption::RateMismatch,
                       VerifyError::Kind::RateMismatch}),
    [](const ::testing::TestParamInfo<CorruptionCase>& info) {
        // Kebab-case kind name -> CamelCase test suffix.
        std::string out;
        bool up = true;
        for (char c : toString(info.param.expected)) {
            if (c == '-') {
                up = true;
                continue;
            }
            out += up ? static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)))
                      : c;
            up = false;
        }
        return out;
    });

TEST(Verify, SweepingSeedsHitsEverySiteWithoutFalseNegatives)
{
    // Each seed picks a different candidate instruction; every pick
    // must still be detected.
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        graph::FilterDefPtr def;
        CompiledActor ca = compiledFir(&def);
        std::string what =
            injectCorruption(ca.work, Corruption::BadRegister, seed);
        ASSERT_FALSE(what.empty());
        EXPECT_TRUE(hasKind(verifyActor(ca, *def),
                            VerifyError::Kind::BadRegister))
            << what;
    }
}

TEST(Verify, EmptyStreamIsTruncated)
{
    Code code;
    code.numRegs = 1;
    auto errs = verifyCode(code, VerifySpec{});
    ASSERT_FALSE(errs.empty());
    EXPECT_EQ(errs[0].kind, VerifyError::Kind::Truncated);
}

TEST(Verify, UnknownOpcodeByteIsRejected)
{
    Code code;
    code.numRegs = 1;
    Instr bad;
    bad.op = static_cast<Op>(200);
    code.instrs.push_back(bad);
    code.instrs.push_back(Instr{});  // Halt.
    auto errs = verifyCode(code, VerifySpec{});
    EXPECT_TRUE(hasKind(errs, VerifyError::Kind::BadOpcode))
        << dump(errs);
}

TEST(Verify, LaneIndexPastMaxLanesIsRejected)
{
    Code code;
    code.numRegs = 2;
    Instr lr;
    lr.op = Op::LaneRead;
    lr.dst = 0;
    lr.a = 1;
    lr.lane = kMaxLanes + 4;
    code.instrs.push_back(lr);
    code.instrs.push_back(Instr{});  // Halt.
    auto errs = verifyCode(code, VerifySpec{});
    EXPECT_TRUE(hasKind(errs, VerifyError::Kind::BadLane))
        << dump(errs);
}

TEST(Verify, FrameSlotTemplateMismatchIsRejected)
{
    graph::FilterDefPtr def;
    CompiledActor ca = compiledFir(&def);
    ca.numSlots += 1;  // Claim a slot the template list doesn't back.
    auto errs = verifyActor(ca, *def);
    ASSERT_FALSE(errs.empty());
    EXPECT_EQ(errs[0].kind, VerifyError::Kind::BadSlot);
}

TEST(Verify, InitBodyMustNotTouchTapes)
{
    graph::FilterDefPtr def;
    CompiledActor ca = compiledFir(&def);
    // Splice a Pop into the init stream: init bodies are verified
    // with allowTapeOps = false.
    Instr pop;
    pop.op = Op::Pop;
    pop.dst = 0;
    pop.type = ir::kFloat32;
    ASSERT_FALSE(ca.init.instrs.empty());
    ca.init.instrs.insert(ca.init.instrs.end() - 1, pop);
    if (ca.init.numRegs < 1)
        ca.init.numRegs = 1;
    auto errs = verifyActor(ca, *def);
    ASSERT_FALSE(errs.empty());
    EXPECT_TRUE(hasKind(errs, VerifyError::Kind::RateMismatch))
        << dump(errs);
    EXPECT_NE(errs[0].message.find("init: "), std::string::npos);
}

TEST(Verify, ErrorToStringMentionsPcAndKind)
{
    VerifyError e;
    e.kind = VerifyError::Kind::BadRegister;
    e.pc = 12;
    e.message = "result register 99 out of bounds";
    std::string s = toString(e);
    EXPECT_NE(s.find("pc 12"), std::string::npos);
    EXPECT_NE(s.find("bad-register"), std::string::npos);
}

} // namespace
} // namespace macross::interp::bytecode
