/**
 * @file
 * Watchdog tests for the parallel runtime: a fault-injected worker
 * stall must be detected within the timeout, shut the pool down
 * cleanly, and degrade to the serial fallback with bit-identical
 * output bytes and modeled cycles at every thread count; an injected
 * worker exception must surface as a structured workerError fault.
 */
#include "interp/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "machine/machine_desc.h"
#include "support/fault.h"

namespace macross::interp {
namespace {

class WatchdogTest : public ::testing::Test {
  protected:
    void SetUp() override { support::FaultInjector::instance().reset(); }
    void TearDown() override
    {
        support::FaultInjector::instance().reset();
    }
};

std::vector<double>
profileActorCycles(const vectorizer::CompiledProgram& p,
                   const machine::MachineDesc& m)
{
    machine::CostSink cost(m);
    Runner r(p.graph, p.schedule, &cost);
    r.runInit();
    r.runSteady(8);
    std::vector<double> out(p.graph.actors.size(), 0.0);
    for (const auto& a : p.graph.actors)
        out[a.id] = cost.actorCycles(a.id);
    return out;
}

/** Stall one worker's Nth batch passage long past the watchdog. */
void
armStallOnPassage(int passage, int stall_ms)
{
    auto count = std::make_shared<std::atomic<int>>(0);
    support::FaultInjector::instance().arm(
        "parallel.worker.batch",
        [count, passage, stall_ms](std::int64_t*) {
            if (count->fetch_add(1) + 1 == passage)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(stall_ms));
        });
}

void
runStallScenario(int threads)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();

    machine::CostSink serialCost(m);
    Runner serial(p.graph, p.schedule, &serialCost);
    serial.runInit();
    serial.runSteady(12);

    auto cycles = profileActorCycles(p, m);
    multicore::Partition part = multicore::partitionGreedy(
        p.graph, p.schedule, cycles, threads);
    machine::CostSink parCost(m);
    ParallelRunner::Options opt;
    opt.batchIterations = 4;  // 12 iterations = 3 batches.
    opt.watchdogMs = 75;
    // Batch 1 completes (threads passages), then the first worker of
    // batch 2 stalls far past the watchdog — so the fallback has a
    // non-empty captured prefix to verify against.
    armStallOnPassage(threads + 1, 800);
    ParallelRunner pr(p.graph, p.schedule, part, &parCost,
                      EngineConfig(ExecEngine::Bytecode), opt);
    pr.runInit();
    pr.runSteady(12);

    ASSERT_EQ(pr.faults().size(), 1u);
    const ParallelFault& f = pr.faults()[0];
    EXPECT_EQ(f.kind, "workerStall");
    EXPECT_EQ(f.generation, 2);
    EXPECT_EQ(f.batchIterations, 4);
    // Detection must happen at watchdog granularity, well before the
    // injected 800 ms stall resolves on its own.
    EXPECT_GE(f.detectedAfterMs, 70.0);
    EXPECT_LT(f.detectedAfterMs, 700.0);
    EXPECT_FALSE(f.pendingWorkers.empty());
    EXPECT_TRUE(f.cleanShutdown) << f.message;
    EXPECT_TRUE(f.fallbackUsed);
    EXPECT_TRUE(f.fallbackVerified) << f.message;
    EXPECT_GT(f.verifiedElements, 0);
    EXPECT_TRUE(pr.degradedToSerial());

    // The degraded run's post-conditions are exactly a healthy run's:
    // bit-identical output bytes and modeled cycles.
    testutil::expectSameStream(serial.captured(), pr.captured());
    for (const auto& a : p.graph.actors)
        EXPECT_EQ(serialCost.actorCycles(a.id),
                  parCost.actorCycles(a.id));
    EXPECT_DOUBLE_EQ(serialCost.totalCycles(), parCost.totalCycles());

    // Continuing after degradation stays serial and keeps agreeing.
    serial.runSteady(5);
    pr.runSteady(5);
    testutil::expectSameStream(serial.captured(), pr.captured());
    EXPECT_DOUBLE_EQ(serialCost.totalCycles(), parCost.totalCycles());

    // The fault is reported under run.stats.parallel.faults.
    json::Value stats = pr.statsToJson();
    const json::Value& par = *stats.find("parallel");
    EXPECT_TRUE(par.find("degradedToSerial")->asBool());
    ASSERT_EQ(par.find("faults")->size(), 1u);
    const json::Value& jf = par.find("faults")->at(0);
    EXPECT_EQ(jf.find("kind")->asString(), "workerStall");
    EXPECT_TRUE(jf.find("fallbackVerified")->asBool());
}

TEST_F(WatchdogTest, StallDetectedAndFallbackIdenticalOneThread)
{
    runStallScenario(1);
}

TEST_F(WatchdogTest, StallDetectedAndFallbackIdenticalTwoThreads)
{
    runStallScenario(2);
}

TEST_F(WatchdogTest, StallDetectedAndFallbackIdenticalFourThreads)
{
    runStallScenario(4);
}

TEST_F(WatchdogTest, WorkerExceptionBecomesStructuredFault)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 2);
    ParallelRunner::Options opt;
    opt.watchdogMs = 2000;
    // Every worker's batch entry throws: the batch completes with
    // errors recorded (nobody blocks on a peer's ring), so detection
    // takes the workerError path rather than the stall timeout.
    support::FaultInjector::instance().arm(
        "parallel.worker.batch",
        [](std::int64_t*) {
            throw std::runtime_error("injected worker failure");
        });
    machine::CostSink parCost(m);
    ParallelRunner pr(p.graph, p.schedule, part, &parCost,
                      EngineConfig(ExecEngine::Bytecode), opt);
    pr.runInit();
    pr.runSteady(6);

    ASSERT_EQ(pr.faults().size(), 1u);
    const ParallelFault& f = pr.faults()[0];
    EXPECT_EQ(f.kind, "workerError");
    EXPECT_NE(f.message.find("injected worker failure"),
              std::string::npos);
    EXPECT_TRUE(f.fallbackUsed);
    EXPECT_TRUE(pr.degradedToSerial());

    machine::CostSink serialCost(m);
    Runner serial(p.graph, p.schedule, &serialCost);
    serial.runInit();
    serial.runSteady(6);
    testutil::expectSameStream(serial.captured(), pr.captured());
    EXPECT_DOUBLE_EQ(serialCost.totalCycles(), parCost.totalCycles());
}

TEST_F(WatchdogTest, NoWatchdogRethrowsWorkerException)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 2);
    support::FaultInjector::instance().arm(
        "parallel.worker.batch",
        [](std::int64_t*) {
            throw std::runtime_error("injected worker failure");
        });
    ParallelRunner pr(p.graph, p.schedule, part);  // watchdogMs = 0.
    pr.runInit();
    EXPECT_THROW(pr.runSteady(6), std::runtime_error);
}

/**
 * The watchdog and serial fallback must work identically when the
 * workers drive emitted native partitions instead of the bytecode VM:
 * a stalled worker's peers block inside emitted ring waits, the
 * abort flag makes those waits panic out through the emitted frames,
 * and the run replays through the whole-program serial native engine
 * with a bit-identical stream and a rebuilt cost sink (native runs
 * model no cycles, so both sinks agree on the zero profile).
 */
void
runNativeStallScenario(int threads)
{
    vectorizer::SimdizeOptions sopts;
    sopts.forceSimdize = true;
    sopts.machine = machine::coreI7();
    auto p = vectorizer::macroSimdize(benchmarks::makeFmRadio(), sopts);
    machine::MachineDesc m = machine::coreI7();

    EngineConfig config(ExecEngine::Native);
    config.simd.laneWidth = 4;

    machine::CostSink serialCost(m);
    Runner serial(p.graph, p.schedule, &serialCost, config);
    serial.runInit();
    serial.runSteady(12);

    auto cycles = profileActorCycles(p, m);
    multicore::Partition part = multicore::partitionGreedy(
        p.graph, p.schedule, cycles, threads);
    machine::CostSink parCost(m);
    ParallelRunner::Options opt;
    opt.batchIterations = 4;  // 12 iterations = 3 batches.
    opt.watchdogMs = 75;
    armStallOnPassage(threads + 1, 800);
    ParallelRunner pr(p.graph, p.schedule, part, &parCost, config,
                      opt);
    pr.runInit();
    pr.runSteady(12);

    ASSERT_EQ(pr.faults().size(), 1u);
    const ParallelFault& f = pr.faults()[0];
    EXPECT_EQ(f.kind, "workerStall");
    EXPECT_EQ(f.generation, 2);
    EXPECT_TRUE(f.cleanShutdown) << f.message;
    EXPECT_TRUE(f.fallbackUsed);
    EXPECT_TRUE(f.fallbackVerified) << f.message;
    EXPECT_GT(f.verifiedElements, 0);
    EXPECT_TRUE(pr.degradedToSerial());

    testutil::expectSameStream(serial.captured(), pr.captured());
    EXPECT_DOUBLE_EQ(serialCost.totalCycles(), parCost.totalCycles());

    // Continuing after degradation stays serial-native and agrees.
    serial.runSteady(5);
    pr.runSteady(5);
    testutil::expectSameStream(serial.captured(), pr.captured());

    json::Value stats = pr.statsToJson();
    EXPECT_EQ(stats.find("engine")->asString(), "native");
    const json::Value& par = *stats.find("parallel");
    EXPECT_TRUE(par.find("degradedToSerial")->asBool());
    ASSERT_EQ(par.find("faults")->size(), 1u);
    EXPECT_TRUE(
        par.find("faults")->at(0).find("fallbackVerified")->asBool());
}

TEST_F(WatchdogTest, NativeStallFallsBackIdenticalTwoThreads)
{
    runNativeStallScenario(2);
}

TEST_F(WatchdogTest, NativeStallFallsBackIdenticalFourThreads)
{
    runNativeStallScenario(4);
}

TEST_F(WatchdogTest, HealthyRunReportsNoFaults)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    machine::MachineDesc m = machine::coreI7();
    auto cycles = profileActorCycles(p, m);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, cycles, 2);
    ParallelRunner::Options opt;
    opt.watchdogMs = 5000;  // Generous: must never fire.
    ParallelRunner pr(p.graph, p.schedule, part, nullptr,
                      EngineConfig(ExecEngine::Bytecode), opt);
    pr.runInit();
    pr.runSteady(8);
    EXPECT_TRUE(pr.faults().empty());
    EXPECT_FALSE(pr.degradedToSerial());
    json::Value stats = pr.statsToJson();
    EXPECT_EQ(stats.find("parallel")->find("faults")->size(), 0u);
    EXPECT_FALSE(
        stats.find("parallel")->find("degradedToSerial")->asBool());
}

} // namespace
} // namespace macross::interp
