/**
 * @file
 * Unit tests for IR static analyses.
 */
#include "ir/analysis.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace macross::ir {
namespace {

VarPtr
makeVar(const std::string& name, Type t, int arr = 0,
        VarKind k = VarKind::Local)
{
    auto v = std::make_shared<Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    v->kind = k;
    return v;
}

TEST(Analysis, CountsFlatTapeAccesses)
{
    BlockBuilder b;
    auto x = makeVar("x", kFloat32);
    b.assign(x, popExpr(kFloat32));
    b.assign(x, peekExpr(kFloat32, intImm(2)));
    b.push(varRef(x));
    b.push(varRef(x));
    TapeCounts tc = countTapeAccesses(b.stmts());
    EXPECT_TRUE(tc.exact);
    EXPECT_EQ(tc.pops, 1);
    EXPECT_EQ(tc.peeks, 1);
    EXPECT_EQ(tc.pushes, 2);
}

TEST(Analysis, LoopMultipliesCounts)
{
    BlockBuilder b;
    auto x = makeVar("x", kFloat32);
    auto i = makeVar("i", kInt32);
    b.forLoop(i, 0, 5, [&](BlockBuilder& inner) {
        inner.assign(x, popExpr(kFloat32));
        inner.push(varRef(x));
    });
    TapeCounts tc = countTapeAccesses(b.stmts());
    EXPECT_TRUE(tc.exact);
    EXPECT_EQ(tc.pops, 5);
    EXPECT_EQ(tc.pushes, 5);
}

TEST(Analysis, NonConstantLoopBoundIsInexact)
{
    BlockBuilder b;
    auto x = makeVar("x", kFloat32);
    auto n = makeVar("n", kInt32);
    auto i = makeVar("i", kInt32);
    b.forLoop(i, intImm(0), varRef(n), [&](BlockBuilder& inner) {
        inner.assign(x, popExpr(kFloat32));
    });
    EXPECT_FALSE(countTapeAccesses(b.stmts()).exact);
}

TEST(Analysis, UnbalancedIfIsInexact)
{
    BlockBuilder b;
    auto x = makeVar("x", kFloat32);
    b.ifElse(intImm(1),
             [&](BlockBuilder& t) { t.push(floatImm(1.0f)); },
             [&](BlockBuilder& e) {
                 e.push(floatImm(1.0f));
                 e.push(floatImm(2.0f));
             });
    EXPECT_FALSE(countTapeAccesses(b.stmts()).exact);
    (void)x;
}

TEST(Analysis, BalancedIfIsExact)
{
    BlockBuilder b;
    b.ifElse(intImm(1),
             [&](BlockBuilder& t) { t.push(floatImm(1.0f)); },
             [&](BlockBuilder& e) { e.push(floatImm(2.0f)); });
    TapeCounts tc = countTapeAccesses(b.stmts());
    EXPECT_TRUE(tc.exact);
    EXPECT_EQ(tc.pushes, 1);
}

TEST(Analysis, VectorAccessesCountLanes)
{
    BlockBuilder b;
    auto v = makeVar("v", Type{Scalar::Float32, 4});
    b.assign(v, vpopExpr(Type{Scalar::Float32, 4}));
    b.vpush(varRef(v));
    b.advanceIn(8);
    b.advanceOut(4);
    TapeCounts tc = countTapeAccesses(b.stmts());
    EXPECT_EQ(tc.pops, 4 + 8);
    EXPECT_EQ(tc.pushes, 4 + 4);
}

TEST(Analysis, RPushDoesNotAdvance)
{
    BlockBuilder b;
    b.rpush(floatImm(1.0f), intImm(2));
    b.push(floatImm(1.0f));
    TapeCounts tc = countTapeAccesses(b.stmts());
    EXPECT_EQ(tc.pushes, 1);
}

TEST(Analysis, ConstFold)
{
    EXPECT_EQ(tryConstFold(intImm(3) * intImm(4) + intImm(1)), 13);
    EXPECT_EQ(tryConstFold(binary(BinaryOp::Shl, intImm(1), intImm(4))),
              16);
    auto v = makeVar("v", kInt32);
    EXPECT_FALSE(tryConstFold(varRef(v)).has_value());
    EXPECT_FALSE(tryConstFold(intImm(1) / intImm(0)).has_value());
}

TEST(Analysis, WrittenAndReferencedVars)
{
    BlockBuilder b;
    auto x = makeVar("x", kFloat32);
    auto y = makeVar("y", kFloat32);
    auto i = makeVar("i", kInt32);
    b.forLoop(i, 0, 2, [&](BlockBuilder& inner) {
        inner.assign(x, varRef(y) + floatImm(1.0f));
    });
    auto written = writtenVars(b.stmts());
    EXPECT_TRUE(written.count(x.get()));
    EXPECT_TRUE(written.count(i.get()));
    EXPECT_FALSE(written.count(y.get()));
    auto refd = referencedVars(b.stmts());
    EXPECT_TRUE(refd.count(y.get()));
}

TEST(Analysis, TapeDirectionPredicates)
{
    BlockBuilder reads;
    auto x = makeVar("x", kFloat32);
    reads.assign(x, peekExpr(kFloat32, intImm(0)));
    EXPECT_TRUE(readsInputTape(reads.stmts()));
    EXPECT_FALSE(writesOutputTape(reads.stmts()));

    BlockBuilder writes;
    writes.push(floatImm(1.0f));
    EXPECT_FALSE(readsInputTape(writes.stmts()));
    EXPECT_TRUE(writesOutputTape(writes.stmts()));
}

} // namespace
} // namespace macross::ir
