/**
 * @file
 * Unit tests for IR construction and type inference.
 */
#include "ir/builder.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::ir {
namespace {

VarPtr
makeVar(const std::string& name, Type t, int arr = 0,
        VarKind k = VarKind::Local)
{
    auto v = std::make_shared<Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    v->kind = k;
    return v;
}

TEST(Builder, IntFloatPromotion)
{
    ExprPtr e = intImm(2) + floatImm(1.5f);
    EXPECT_EQ(e->type, kFloat32);
    // Both operands should have been converted to float.
    EXPECT_EQ(e->args[0]->type, kFloat32);
    EXPECT_EQ(e->args[1]->type, kFloat32);
}

TEST(Builder, ComparisonYieldsInt)
{
    ExprPtr e = floatImm(1.0f) < floatImm(2.0f);
    EXPECT_EQ(e->type, kInt32);
}

TEST(Builder, ScalarVectorUnificationInsertsSplat)
{
    auto v = makeVar("v", Type{Scalar::Float32, 4});
    ExprPtr e = varRef(v) * floatImm(2.0f);
    EXPECT_EQ(e->type.lanes, 4);
    EXPECT_EQ(e->args[1]->kind, ExprKind::Splat);
}

TEST(Builder, MismatchedVectorLanesPanic)
{
    auto a = makeVar("a", Type{Scalar::Float32, 4});
    auto b = makeVar("b", Type{Scalar::Float32, 8});
    EXPECT_THROW(varRef(a) + varRef(b), PanicError);
}

TEST(Builder, IntegerOnlyOperatorsRejectFloats)
{
    EXPECT_THROW(floatImm(1.0f) % floatImm(2.0f), PanicError);
    EXPECT_THROW(binary(BinaryOp::And, floatImm(1.0f), floatImm(1.0f)),
                 PanicError);
}

TEST(Builder, VarRefOnArrayRejected)
{
    auto arr = makeVar("a", kFloat32, 8);
    EXPECT_THROW(varRef(arr), PanicError);
    EXPECT_NO_THROW(load(arr, intImm(0)));
}

TEST(Builder, LoadRequiresScalarIntIndex)
{
    auto arr = makeVar("a", kFloat32, 8);
    EXPECT_THROW(load(arr, floatImm(1.0f)), PanicError);
}

TEST(Builder, LaneReadBounds)
{
    auto v = makeVar("v", Type{Scalar::Int32, 4});
    EXPECT_NO_THROW(laneRead(varRef(v), 3));
    EXPECT_THROW(laneRead(varRef(v), 4), PanicError);
    EXPECT_THROW(laneRead(intImm(1), 0), PanicError);
}

TEST(Builder, ToFloatIsIdempotent)
{
    ExprPtr f = toFloat(floatImm(1.0f));
    EXPECT_EQ(f->kind, ExprKind::FloatImm);
    ExprPtr c = toFloat(intImm(1));
    EXPECT_EQ(c->kind, ExprKind::Call);
    EXPECT_EQ(c->type, kFloat32);
}

TEST(Builder, AssignTypeChecks)
{
    BlockBuilder b;
    auto f = makeVar("f", kFloat32);
    // Int value into float var converts implicitly.
    b.assign(f, intImm(3));
    ASSERT_EQ(b.stmts().size(), 1u);
    EXPECT_EQ(b.stmts()[0]->a->type, kFloat32);

    auto vec = makeVar("v", Type{Scalar::Float32, 4});
    b.assign(vec, floatImm(1.0f));  // splat inserted
    EXPECT_EQ(b.stmts()[1]->a->type.lanes, 4);
}

TEST(Builder, AssignVectorToScalarPanics)
{
    BlockBuilder b;
    auto s = makeVar("s", kFloat32);
    auto vec = makeVar("v", Type{Scalar::Float32, 4});
    EXPECT_THROW(b.assign(s, varRef(vec)), PanicError);
}

TEST(Builder, PushOfVectorRejected)
{
    BlockBuilder b;
    auto vec = makeVar("v", Type{Scalar::Float32, 4});
    EXPECT_THROW(b.push(varRef(vec)), PanicError);
    EXPECT_NO_THROW(b.vpush(varRef(vec)));
    EXPECT_THROW(b.vpush(floatImm(1.0f)), PanicError);
}

TEST(Builder, ForLoopRequiresScalarIntVar)
{
    BlockBuilder b;
    auto fv = makeVar("f", kFloat32);
    EXPECT_THROW(b.forLoop(fv, 0, 3, [](BlockBuilder&) {}),
                 PanicError);
    auto iv = makeVar("i", kInt32);
    b.forLoop(iv, 0, 3, [&](BlockBuilder& inner) {
        inner.assign(iv, intImm(0));  // body content is arbitrary
    });
    EXPECT_EQ(b.stmts().back()->kind, StmtKind::For);
    EXPECT_EQ(b.stmts().back()->body.size(), 1u);
}

TEST(Builder, VecImmLaneCount)
{
    ExprPtr v = vecImm(std::vector<std::int64_t>{1, 2, 3, 4});
    EXPECT_EQ(v->type.lanes, 4);
    EXPECT_TRUE(v->type.isInt());
    EXPECT_THROW(vecImm(std::vector<float>{1.0f}), PanicError);
}

TEST(Builder, PermutationIntrinsicsRequireEqualVectors)
{
    auto a = makeVar("a", Type{Scalar::Float32, 4});
    auto b = makeVar("b", Type{Scalar::Float32, 4});
    EXPECT_NO_THROW(
        call(Intrinsic::ExtractEven, {varRef(a), varRef(b)}));
    EXPECT_THROW(call(Intrinsic::ExtractEven, {varRef(a)}),
                 PanicError);
    EXPECT_THROW(
        call(Intrinsic::InterleaveLo, {floatImm(1.0f), floatImm(2.0f)}),
        PanicError);
}

} // namespace
} // namespace macross::ir
