/**
 * @file
 * Unit tests for the Rewriter: variable remapping retypes trees
 * through the factories (the mechanism the vectorizer relies on).
 */
#include "ir/clone.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::ir {
namespace {

VarPtr
makeVar(const std::string& name, Type t, int arr = 0)
{
    auto v = std::make_shared<Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    return v;
}

TEST(Rewriter, RemappingScalarToVectorRetypes)
{
    auto x = makeVar("x", kFloat32);
    auto xv = makeVar("x_v", Type{Scalar::Float32, 4});
    // y = x * 2.0
    BlockBuilder b;
    auto y = makeVar("y", kFloat32);
    auto yv = makeVar("y_v", Type{Scalar::Float32, 4});
    b.assign(y, varRef(x) * floatImm(2.0f));

    Rewriter rw;
    rw.varMap.set(x, xv);
    rw.varMap.set(y, yv);
    auto out = rw.rewrite(b.stmts());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0]->var.get(), yv.get());
    EXPECT_EQ(out[0]->a->type.lanes, 4);
    // The float literal must have been splatted.
    EXPECT_EQ(out[0]->a->args[1]->kind, ExprKind::Splat);
}

TEST(Rewriter, SplatDissolvesWhenOperandBecomesVector)
{
    auto x = makeVar("x", kFloat32);
    auto xv = makeVar("x_v", Type{Scalar::Float32, 4});
    ExprPtr e = splat(varRef(x), 4);
    Rewriter rw;
    rw.varMap.set(x, xv);
    ExprPtr out = rw.rewrite(e);
    EXPECT_EQ(out->kind, ExprKind::VarRef);
    EXPECT_EQ(out->type.lanes, 4);
}

TEST(Rewriter, ExprHookReplacesNodes)
{
    auto x = makeVar("x", kInt32);
    ExprPtr e = varRef(x) + intImm(1);
    Rewriter rw;
    rw.exprHook = [&](const Expr& node, Rewriter&) -> ExprPtr {
        if (node.kind == ExprKind::VarRef)
            return intImm(41);
        return nullptr;
    };
    ExprPtr out = rw.rewrite(e);
    EXPECT_EQ(out->args[0]->ival, 41);
}

TEST(Rewriter, StmtHookExpandsStatements)
{
    BlockBuilder b;
    b.push(floatImm(1.0f));
    Rewriter rw;
    rw.stmtHook = [](const Stmt& s, BlockBuilder& out,
                     Rewriter& self) -> bool {
        if (s.kind != StmtKind::Push)
            return false;
        out.rpush(self.rewrite(s.a), intImm(3));
        out.push(self.rewrite(s.a));
        return true;
    };
    auto out = rw.rewrite(b.stmts());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0]->kind, StmtKind::RPush);
    EXPECT_EQ(out[1]->kind, StmtKind::Push);
}

TEST(Rewriter, CloneIsDeepAndIndependent)
{
    auto x = makeVar("x", kFloat32);
    BlockBuilder b;
    auto i = makeVar("i", kInt32);
    b.forLoop(i, 0, 3, [&](BlockBuilder& inner) {
        inner.assign(x, varRef(x) + floatImm(1.0f));
    });
    VarMap empty;
    auto copy = cloneStmts(b.stmts(), empty);
    ASSERT_EQ(copy.size(), 1u);
    EXPECT_NE(copy[0].get(), b.stmts()[0].get());
    EXPECT_EQ(copy[0]->body.size(), 1u);
    // Unmapped vars keep their identity.
    EXPECT_EQ(copy[0]->var.get(), i.get());
}

TEST(Rewriter, VectorIfConditionPanics)
{
    auto c = makeVar("c", kInt32);
    auto cv = makeVar("c_v", Type{Scalar::Int32, 4});
    BlockBuilder b;
    b.ifElse(varRef(c), [&](BlockBuilder& t) {
        t.assign(c, intImm(1));
    });
    Rewriter rw;
    rw.varMap.set(c, cv);
    EXPECT_THROW(rw.rewrite(b.stmts()), PanicError);
}

} // namespace
} // namespace macross::ir
