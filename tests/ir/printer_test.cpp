/**
 * @file
 * Unit tests for the IR text dumper.
 */
#include "ir/printer.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace macross::ir {
namespace {

VarPtr
makeVar(const std::string& name, Type t, int arr = 0)
{
    auto v = std::make_shared<Var>();
    v->name = name;
    v->type = t;
    v->arraySize = arr;
    return v;
}

TEST(Printer, PaperStyleTapeAccesses)
{
    BlockBuilder b;
    auto tv = makeVar("t_v", Type{Scalar::Float32, 4});
    b.assignLane(tv, 3, peekExpr(kFloat32, intImm(6)));
    b.assignLane(tv, 0, popExpr(kFloat32));
    b.vpush(varRef(tv));
    b.rpush(laneRead(varRef(tv), 2), intImm(4));
    b.advanceIn(6);
    std::string out = printStmts(b.stmts());
    EXPECT_NE(out.find("t_v.{3} = peek(6);"), std::string::npos);
    EXPECT_NE(out.find("t_v.{0} = pop();"), std::string::npos);
    EXPECT_NE(out.find("vpush(t_v);"), std::string::npos);
    EXPECT_NE(out.find("rpush(t_v.{2}, 4);"), std::string::npos);
    EXPECT_NE(out.find("advance_in(6);"), std::string::npos);
}

TEST(Printer, ControlFlowIndentation)
{
    BlockBuilder b;
    auto i = makeVar("i", kInt32);
    auto x = makeVar("x", kFloat32);
    b.forLoop(i, 0, 2, [&](BlockBuilder& inner) {
        inner.assign(x, floatImm(1.0f));
    });
    std::string out = printStmts(b.stmts());
    EXPECT_NE(out.find("for (i : 0 until 2) {"), std::string::npos);
    EXPECT_NE(out.find("    x = 1f;"), std::string::npos);
}

TEST(Printer, ExpressionForms)
{
    auto v = makeVar("v", Type{Scalar::Int32, 4});
    EXPECT_EQ(printExpr(binary(BinaryOp::Min, intImm(1), intImm(2))),
              "min(1, 2)");
    EXPECT_EQ(printExpr(splat(intImm(7), 4)), "splat(7, 4)");
    EXPECT_EQ(printExpr(call(Intrinsic::ExtractOdd,
                             {varRef(v), varRef(v)})),
              "extract_odd(v, v)");
}

} // namespace
} // namespace macross::ir
