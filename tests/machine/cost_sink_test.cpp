/**
 * @file
 * Unit tests for machine descriptions and cost accumulation.
 */
#include "machine/cost_sink.h"

#include <gtest/gtest.h>

namespace macross::machine {
namespace {

TEST(MachineDesc, SaguVariantOnlyChangesWalkCost)
{
    MachineDesc base = coreI7();
    MachineDesc sagu = coreI7WithSagu();
    EXPECT_FALSE(base.hasSagu);
    EXPECT_TRUE(sagu.hasSagu);
    EXPECT_GT(base.costOf(OpClass::SaguWalk), 0.0);
    EXPECT_DOUBLE_EQ(sagu.costOf(OpClass::SaguWalk), 0.0);
    for (int c = 0; c < static_cast<int>(OpClass::NumClasses); ++c) {
        if (c == static_cast<int>(OpClass::SaguWalk))
            continue;
        EXPECT_DOUBLE_EQ(base.cost[c], sagu.cost[c]);
    }
}

TEST(MachineDesc, VectorCostCeilsByWidth)
{
    MachineDesc m = coreI7();
    double one = m.costOf(OpClass::FpAdd);
    EXPECT_DOUBLE_EQ(m.vectorCost(OpClass::FpAdd, 1), one);
    EXPECT_DOUBLE_EQ(m.vectorCost(OpClass::FpAdd, 4), one);
    EXPECT_DOUBLE_EQ(m.vectorCost(OpClass::FpAdd, 5), 2 * one);
    EXPECT_DOUBLE_EQ(m.vectorCost(OpClass::FpAdd, 8), 2 * one);
}

TEST(MachineDesc, WideVariants)
{
    EXPECT_EQ(wide8().simdWidth, 8);
    EXPECT_EQ(wide16().simdWidth, 16);
}

TEST(CostSink, PerActorAttribution)
{
    MachineDesc m = coreI7();
    CostSink sink(m);
    sink.setCurrentActor(3);
    sink.charge(OpClass::FpMul);
    sink.setCurrentActor(7);
    sink.charge(OpClass::FpMul, 1, 2);
    EXPECT_DOUBLE_EQ(sink.actorCycles(3), m.costOf(OpClass::FpMul));
    EXPECT_DOUBLE_EQ(sink.actorCycles(7),
                     2 * m.costOf(OpClass::FpMul));
    EXPECT_DOUBLE_EQ(sink.totalCycles(),
                     3 * m.costOf(OpClass::FpMul));
    EXPECT_DOUBLE_EQ(sink.actorCycles(99), 0.0);
}

TEST(CostSink, ClassBreakdownAndReset)
{
    MachineDesc m = coreI7();
    CostSink sink(m);
    sink.charge(OpClass::Trig, 4, 3);
    EXPECT_EQ(sink.classOps()[static_cast<int>(OpClass::Trig)], 3);
    EXPECT_DOUBLE_EQ(sink.classCycles()[static_cast<int>(OpClass::Trig)],
                     3 * m.costOf(OpClass::Trig));
    sink.reset();
    EXPECT_DOUBLE_EQ(sink.totalCycles(), 0.0);
    EXPECT_EQ(sink.classOps()[static_cast<int>(OpClass::Trig)], 0);
}

TEST(CostSink, AllOpClassesHaveNames)
{
    for (int c = 0; c < static_cast<int>(OpClass::NumClasses); ++c)
        EXPECT_FALSE(toString(static_cast<OpClass>(c)).empty());
}

} // namespace
} // namespace macross::machine
