/**
 * @file
 * Unit tests for the permutation-network generator: correctness by
 * simulation and the X*log2(X) operation-count bound (Figure 7).
 */
#include "machine/permutation.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/math_util.h"

namespace macross::machine {
namespace {

class DeinterleaveSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeinterleaveSweep, ProducesStrideGather)
{
    auto [x, sw] = GetParam();
    PermNetwork net = deinterleaveNetwork(x);
    auto out = simulateNetwork(net, sw);
    ASSERT_EQ(out.size(), static_cast<std::size_t>(x));
    for (int j = 0; j < x; ++j) {
        for (int l = 0; l < sw; ++l) {
            // Output j, lane l must hold stream element l*x + j.
            EXPECT_EQ(out[j][l], l * x + j)
                << "x=" << x << " sw=" << sw << " j=" << j
                << " l=" << l;
        }
    }
}

TEST_P(DeinterleaveSweep, MeetsOperationBound)
{
    auto [x, sw] = GetParam();
    (void)sw;
    PermNetwork net = deinterleaveNetwork(x);
    std::int64_t expected =
        x > 1 ? static_cast<std::int64_t>(x) * log2Exact(x) : 0;
    EXPECT_EQ(permOpCount(net), expected);
}

TEST_P(DeinterleaveSweep, InterleaveIsExactInverse)
{
    auto [x, sw] = GetParam();
    PermNetwork inv = interleaveNetwork(x);
    EXPECT_EQ(permOpCount(inv),
              x > 1 ? static_cast<std::int64_t>(x) * log2Exact(x) : 0);
    // Simulate interleave on stride-gathered inputs: input register j
    // holds {l*x + j : l}; the outputs must be contiguous.
    std::vector<std::vector<int>> regs(inv.numRegs);
    for (int j = 0; j < x; ++j) {
        regs[j].resize(sw);
        for (int l = 0; l < sw; ++l)
            regs[j][l] = l * x + j;
    }
    // Reuse simulateNetwork by relabeling: simulate maps input reg j
    // lane l to value j*sw + l, so decode through that relabeling.
    auto raw = simulateNetwork(inv, sw);
    auto decode = [&](int token) {
        int j = token / sw, l = token % sw;
        return l * x + j;
    };
    for (int j = 0; j < x; ++j) {
        for (int l = 0; l < sw; ++l) {
            EXPECT_EQ(decode(raw[j][l]), j * sw + l)
                << "x=" << x << " sw=" << sw;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PowersOfTwo, DeinterleaveSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(2, 4, 8, 16)));

TEST(Permutation, Figure7Example)
{
    // 4 pops with SW=4: 4 vector loads + 8 permutation operations.
    PermNetwork net = deinterleaveNetwork(4);
    EXPECT_EQ(permOpCount(net), 8);
    int evens = 0, odds = 0;
    for (const auto& s : net.steps) {
        evens += s.op == PermOp::ExtractEven;
        odds += s.op == PermOp::ExtractOdd;
    }
    EXPECT_EQ(evens, 4);
    EXPECT_EQ(odds, 4);
}

TEST(Permutation, NonPowerOfTwoRejected)
{
    EXPECT_THROW(deinterleaveNetwork(3), FatalError);
    EXPECT_THROW(interleaveNetwork(6), FatalError);
}

} // namespace
} // namespace macross::machine
