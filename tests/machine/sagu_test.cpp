/**
 * @file
 * Unit tests for the SAGU functional model: the hardware counter walk
 * must equal both the Figure 8 software sequence and the closed-form
 * block-transpose address, for a sweep of rates and SIMD widths.
 */
#include "machine/sagu.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::machine {
namespace {

class SaguSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(SaguSweep, UnitMatchesClosedForm)
{
    auto [rate, sw] = GetParam();
    SaguUnit unit(rate, sw);
    const std::int64_t n = rate * sw * 3 + 5;
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(unit.next(), transposedAddress(i, rate, sw))
            << "rate=" << rate << " sw=" << sw << " i=" << i;
}

TEST_P(SaguSweep, UnitMatchesFigure8Software)
{
    auto [rate, sw] = GetParam();
    SaguUnit unit(rate, sw);
    const std::int64_t n = rate * sw * 2 + 3;
    auto sw_seq = figure8AddressWalk(rate, sw, n);
    for (std::int64_t i = 0; i < n; ++i)
        EXPECT_EQ(unit.next(), sw_seq[i]);
}

TEST_P(SaguSweep, WalkIsBlockPermutation)
{
    auto [rate, sw] = GetParam();
    const std::int64_t block = rate * sw;
    SaguUnit unit(rate, sw);
    std::vector<bool> hit(block, false);
    for (std::int64_t i = 0; i < block; ++i) {
        std::int64_t a = unit.next();
        ASSERT_GE(a, 0);
        ASSERT_LT(a, block);
        EXPECT_FALSE(hit[a]) << "duplicate address " << a;
        hit[a] = true;
    }
    // Next block starts exactly at the block boundary.
    EXPECT_EQ(unit.next(), block);
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndWidths, SaguSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(1, 2, 3, 5, 8,
                                                       16),
                       ::testing::Values(2, 4, 8, 16)));

TEST(Sagu, PaperExampleStride2Width4)
{
    // rate 2 (push count), SW 4: the walk is 0,4,1,5,2,6,3,7, 8,...
    SaguUnit unit(2, 4);
    const std::int64_t expect[10] = {0, 4, 1, 5, 2, 6, 3, 7, 8, 12};
    for (std::int64_t e : expect)
        EXPECT_EQ(unit.next(), e);
}

TEST(Sagu, ResetRestartsTheWalk)
{
    SaguUnit unit(3, 4);
    for (int i = 0; i < 7; ++i)
        unit.next();
    unit.reset();
    EXPECT_EQ(unit.next(), 0);
    EXPECT_EQ(unit.next(), 4);
}

TEST(Sagu, InvalidConfigRejected)
{
    EXPECT_THROW(SaguUnit(0, 4), FatalError);
    EXPECT_THROW(SaguUnit(2, 1), FatalError);
}

} // namespace
} // namespace macross::machine
