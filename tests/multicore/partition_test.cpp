/**
 * @file
 * Unit tests for the multicore partitioner and estimate.
 */
#include "multicore/partition.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "../test_util.h"
#include "benchmarks/suite.h"

namespace macross::multicore {
namespace {

std::vector<double>
profileActorCycles(const vectorizer::CompiledProgram& p,
                   const machine::MachineDesc& m, int iters = 10)
{
    machine::CostSink cost(m);
    interp::Runner r(p.graph, p.schedule, &cost);
    r.runInit();
    r.runSteady(iters);
    std::vector<double> out(p.graph.actors.size(), 0.0);
    for (const auto& a : p.graph.actors)
        out[a.id] = cost.actorCycles(a.id) / iters;
    return out;
}

TEST(Partition, SingleCoreHasNoComm)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    auto cycles = profileActorCycles(p, machine::coreI7());
    Partition part = partitionGreedy(p.graph, p.schedule, cycles, 1);
    EXPECT_EQ(part.commWords, 0);
    double total = 0;
    for (double c : cycles)
        total += c;
    EXPECT_NEAR(part.coreLoad[0], total, 1e-6);
}

TEST(Partition, LoadsBalanceAcrossCores)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFilterBank());
    auto cycles = profileActorCycles(p, machine::coreI7());
    Partition part = partitionGreedy(p.graph, p.schedule, cycles, 4);
    double mx = *std::max_element(part.coreLoad.begin(),
                                  part.coreLoad.end());
    double total = 0;
    for (double c : cycles)
        total += c;
    // Bottleneck no worse than 2x the ideal balance for this graph.
    EXPECT_LE(mx, total / 4 * 2.0 + 1e-9);
}

TEST(Partition, EstimateAddsCommunication)
{
    auto p = vectorizer::compileScalar(benchmarks::makeMatrixMult());
    auto cycles = profileActorCycles(p, machine::coreI7());
    Partition part = partitionGreedy(p.graph, p.schedule, cycles, 2);
    MulticoreEstimate withComm =
        estimateMulticore(p.graph, p.schedule, part, 12.0, 50.0);
    MulticoreEstimate freeComm =
        estimateMulticore(p.graph, p.schedule, part, 0.0, 0.0);
    EXPECT_GE(withComm.cycles, freeComm.cycles);
    if (part.commWords > 0) {
        EXPECT_GT(withComm.commCycles, 0.0);
    }
}

TEST(Partition, MoreCoresNeverHurtComputeBound)
{
    auto p = vectorizer::compileScalar(benchmarks::makeMp3Decoder());
    auto cycles = profileActorCycles(p, machine::coreI7());
    Partition p2 = partitionGreedy(p.graph, p.schedule, cycles, 2);
    Partition p4 = partitionGreedy(p.graph, p.schedule, cycles, 4);
    EXPECT_LE(*std::max_element(p4.coreLoad.begin(), p4.coreLoad.end()),
              *std::max_element(p2.coreLoad.begin(),
                                p2.coreLoad.end()) +
                  1e-9);
}

TEST(Partition, SteadyTapeWordsMatchesRateMath)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    for (std::size_t i = 0; i < p.graph.tapes.size(); ++i) {
        const auto& t = p.graph.tapes[i];
        EXPECT_EQ(steadyTapeWords(p.graph, p.schedule,
                                  static_cast<int>(i)),
                  p.schedule.reps[t.src] *
                      p.graph.actor(t.src).pushRate(t.srcPort));
    }
}

TEST(Partition, EdgeCrossWordsDecomposeCommWords)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFilterBank());
    auto cycles = profileActorCycles(p, machine::coreI7());
    Partition part = partitionGreedy(p.graph, p.schedule, cycles, 4);
    MulticoreEstimate e =
        estimateMulticore(p.graph, p.schedule, part, 12.0, 200.0);
    ASSERT_EQ(e.edgeCrossWords.size(), p.graph.tapes.size());
    std::int64_t sum = 0;
    for (std::size_t i = 0; i < p.graph.tapes.size(); ++i) {
        const auto& t = p.graph.tapes[i];
        if (part.crossing(t)) {
            EXPECT_EQ(e.edgeCrossWords[i],
                      steadyTapeWords(p.graph, p.schedule,
                                      static_cast<int>(i)));
        } else {
            EXPECT_EQ(e.edgeCrossWords[i], 0);
        }
        sum += e.edgeCrossWords[i];
    }
    // The per-edge decomposition re-aggregates to the partition's
    // total crossing traffic.
    EXPECT_EQ(sum, part.commWords);
}

TEST(Partition, RejectsBadInputs)
{
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    std::vector<double> cycles(p.graph.actors.size(), 1.0);
    EXPECT_THROW(partitionGreedy(p.graph, p.schedule, cycles, 0),
                 FatalError);
    cycles.pop_back();
    EXPECT_THROW(partitionGreedy(p.graph, p.schedule, cycles, 2),
                 FatalError);
}

} // namespace
} // namespace macross::multicore
