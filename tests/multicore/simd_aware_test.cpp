/**
 * @file
 * SIMD-aware scheduler tests: the Section 5 policy decisions.
 */
#include "multicore/simd_aware.h"

#include <gtest/gtest.h>

#include "benchmarks/suite.h"

namespace macross::multicore {
namespace {

vectorizer::SimdizeOptions
defaultOpts()
{
    vectorizer::SimdizeOptions o;
    return o;
}

TEST(SimdAware, AlwaysPicksABestCandidate)
{
    for (const auto& b : benchmarks::standardSuite()) {
        SCOPED_TRACE(b.name);
        SimdAwareDecision d =
            scheduleSimdAware(b.program, defaultOpts(), 2);
        double best = std::min(
            {d.candidates[0], d.candidates[1], d.candidates[2]});
        EXPECT_DOUBLE_EQ(d.cyclesPerElement, best);
        EXPECT_GE(d.coresUsed, 1);
        EXPECT_LE(d.coresUsed, 2);
    }
}

TEST(SimdAware, MatrixMultPrefersSimdOverPartitioning)
{
    // The paper: "For Matrix Multiply ... the scheduler prefers to
    // only use the SIMD engines because multi-core partitioning leads
    // to high inter-core communication overhead." The decision is a
    // function of the interconnect: on a slower one (25 cycles/word)
    // partitioning MatrixMult is clearly communication-bound and the
    // scheduler falls back to SIMD-only.
    CommModel slow;
    slow.perWordCycles = 25.0;
    SimdAwareDecision d = scheduleSimdAware(
        benchmarks::makeMatrixMult(), defaultOpts(), 2, slow);
    EXPECT_TRUE(d.simdized);
    EXPECT_EQ(d.coresUsed, 1);

    // Even on the default interconnect, SIMD is part of the best plan
    // and partitioning buys almost nothing over SIMD-only.
    SimdAwareDecision d2 = scheduleSimdAware(
        benchmarks::makeMatrixMult(), defaultOpts(), 2);
    EXPECT_TRUE(d2.simdized);
    EXPECT_LT(d2.candidates[2], d2.candidates[0]);
}

TEST(SimdAware, BalancedBenchmarkUsesCoresAndSimd)
{
    // FilterBank partitions well (four independent bands): the best
    // plan keeps the cores and the SIMD engines.
    SimdAwareDecision d = scheduleSimdAware(
        benchmarks::makeFilterBank(), defaultOpts(), 4);
    EXPECT_TRUE(d.simdized);
    EXPECT_EQ(d.coresUsed, 4);
}

TEST(SimdAware, SimdizedPlansBeatScalarOnSuiteAverage)
{
    double scalarSum = 0, chosenSum = 0;
    for (const auto& b : benchmarks::standardSuite()) {
        SimdAwareDecision d =
            scheduleSimdAware(b.program, defaultOpts(), 2);
        scalarSum += d.candidates[0];
        chosenSum += d.cyclesPerElement;
    }
    EXPECT_LT(chosenSum, scalarSum);
}

TEST(SimdAware, FreeCommunicationFavorsPartitioning)
{
    // With zero-cost communication, partitioned SIMD should never
    // lose to single-core SIMD.
    CommModel freeComm;
    freeComm.perWordCycles = 0.0;
    freeComm.syncCycles = 0.0;
    SimdAwareDecision d = scheduleSimdAware(
        benchmarks::makeMatrixMult(), defaultOpts(), 2, freeComm);
    EXPECT_LE(d.candidates[1], d.candidates[2] * 1.0001);
}

} // namespace
} // namespace macross::multicore
