/**
 * @file
 * Concurrent-compile stress for the native cache's single-flight
 * path: N threads racing to build the SAME cache entry must produce
 * exactly one host compile, N-1 cache binds, and bit-identical
 * captured output — no fs::rename races, no duplicate compiler
 * spawns, no corrupted entries.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/suite.h"
#include "native/native_engine.h"
#include "support/diagnostics.h"
#include "vectorizer/pipeline.h"

namespace macross::native {
namespace {

namespace fs = std::filesystem;

std::string freshCacheDir(const std::string& tag)
{
    std::string dir = ::testing::TempDir() +
                      "macross_singleflight_" + tag + "_" +
                      std::to_string(::getpid());
    fs::remove_all(dir);
    return dir;
}

TEST(NativeCacheSingleFlight, NConcurrentBuildsOneCompile)
{
    vectorizer::CompiledProgram p =
        vectorizer::compileScalar(benchmarks::makeRunningExample());
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("race");

    const int n = 8;
    std::vector<std::unique_ptr<NativeProgram>> programs(n);
    std::vector<std::string> errors(n);
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            try {
                programs[i] = std::make_unique<NativeProgram>(
                    p.graph, p.schedule, opts);
                programs[i]->init();
                programs[i]->runSteady(4);
            } catch (const std::exception& e) {
                errors[i] = e.what();
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    int compiles = 0;
    int hits = 0;
    int coalesced = 0;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(errors[i].empty())
            << "thread " << i << ": " << errors[i];
        const NativeStats& st = programs[i]->stats();
        if (st.cacheHit) {
            ++hits;
            EXPECT_EQ(st.compileMillis, 0.0)
                << "a cache hit must not have paid a compile";
        } else {
            ++compiles;
        }
        if (st.coalesced) {
            ++coalesced;
            EXPECT_TRUE(st.cacheHit)
                << "coalesced implies served from the cache";
        }
    }
    EXPECT_EQ(compiles, 1)
        << n << " concurrent identical builds must pay exactly one "
        << "host compile";
    EXPECT_EQ(hits, n - 1);
    // Coalesced arrivals are the subset of hits that had to wait on
    // the in-flight compile; with all threads launched before the
    // ~second-long compile finishes, at least one must have waited.
    EXPECT_GE(coalesced, 1);

    // Bit-identical output across every racer.
    auto want = programs[0]->captured();
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(programs[i]->captured(), want)
            << "racer " << i << " diverged";

    // Exactly one .so in the cache — no leaked temp objects from
    // losing racers.
    int soFiles = 0;
    for (const auto& entry : fs::directory_iterator(opts.cacheDir))
        if (entry.path().extension() == ".so")
            ++soFiles;
    EXPECT_EQ(soFiles, 1);
}

TEST(NativeCacheSingleFlight, UncontendedMissCompilesDirectly)
{
    // The fast path must not regress: a lone miss takes the compile
    // immediately (no waiting, no coalesced flag).
    vectorizer::CompiledProgram p =
        vectorizer::compileScalar(benchmarks::makeRunningExample());
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("lone");

    NativeProgram one(p.graph, p.schedule, opts);
    EXPECT_FALSE(one.stats().cacheHit);
    EXPECT_FALSE(one.stats().coalesced);
    EXPECT_GT(one.stats().compileMillis, 0.0);

    NativeProgram two(p.graph, p.schedule, opts);
    EXPECT_TRUE(two.stats().cacheHit);
    EXPECT_FALSE(two.stats().coalesced);
}

} // namespace
} // namespace macross::native
