/**
 * @file
 * Unit tests for the hardened subprocess layer the native engine
 * shells out through: typed exit classification (ok / nonzero /
 * signaled / timeout / spawn error), wall-clock containment of a
 * wedged child, output capture, bounded spawn retries, and the
 * small string helpers (splitArgs, excerptLines) the compile
 * diagnostics are built from.
 */
#include "native/compile_exec.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdlib>

namespace macross::native {
namespace {

TEST(CompileExec, CleanExitIsOk)
{
    ExecResult r = runCommand({"true"});
    EXPECT_EQ(r.status, ExecStatus::Ok);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.attempts, 1);
}

TEST(CompileExec, NonZeroExitCarriesTheCode)
{
    ExecResult r = runCommand({"sh", "-c", "exit 7"});
    EXPECT_EQ(r.status, ExecStatus::NonZeroExit);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.exitCode, 7);
}

TEST(CompileExec, CapturesStdoutAndStderrInterleaved)
{
    ExecResult r =
        runCommand({"sh", "-c", "echo out; echo err 1>&2"});
    EXPECT_TRUE(r.ok());
    EXPECT_NE(r.output.find("out"), std::string::npos) << r.output;
    EXPECT_NE(r.output.find("err"), std::string::npos) << r.output;
}

TEST(CompileExec, WedgedChildIsKilledAtTheWallDeadline)
{
    SpawnLimits limits;
    limits.wallMs = 250;
    limits.maxAttempts = 1;
    const auto t0 = std::chrono::steady_clock::now();
    ExecResult r = runCommand({"sleep", "30"}, limits);
    const double elapsedMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_EQ(r.status, ExecStatus::Timeout);
    EXPECT_EQ(r.termSignal, SIGKILL);
    // Contained well under the child's own 30 s runtime: the
    // deadline plus generous scheduling slack.
    EXPECT_LT(elapsedMs, 5000.0);
    EXPECT_GE(r.wallMs, 200.0);
}

TEST(CompileExec, TimeoutReapsTheWholeProcessGroup)
{
    // The shell forks a grandchild; the group kill must take both
    // down rather than orphaning the sleeper.
    SpawnLimits limits;
    limits.wallMs = 250;
    limits.maxAttempts = 1;
    ExecResult r =
        runCommand({"sh", "-c", "sleep 30 & wait"}, limits);
    EXPECT_EQ(r.status, ExecStatus::Timeout);
}

TEST(CompileExec, SignaledChildIsClassified)
{
    ExecResult r = runCommand({"sh", "-c", "kill -TERM $$"});
    EXPECT_EQ(r.status, ExecStatus::Signaled);
    EXPECT_EQ(r.termSignal, SIGTERM);
}

TEST(CompileExec, UnspawnableCommandReportsSpawnErrorWithoutRetry)
{
    // ENOENT is a configuration error, not a transient hiccup: the
    // retry loop must NOT burn attempts on a binary that will never
    // appear.
    SpawnLimits limits;
    limits.maxAttempts = 3;
    limits.backoffMs = 1;
    ExecResult r = runCommand(
        {"/nonexistent/macross-no-such-binary"}, limits);
    EXPECT_EQ(r.status, ExecStatus::SpawnError);
    EXPECT_EQ(r.attempts, 1);
    EXPECT_NE(r.spawnError.find("macross-no-such-binary"),
              std::string::npos)
        << r.spawnError;
}

TEST(CompileExec, StatusNamesAreReportStable)
{
    EXPECT_EQ(toString(ExecStatus::Ok), "ok");
    EXPECT_EQ(toString(ExecStatus::NonZeroExit), "nonZeroExit");
    EXPECT_EQ(toString(ExecStatus::Signaled), "signaled");
    EXPECT_EQ(toString(ExecStatus::Timeout), "timeout");
    EXPECT_EQ(toString(ExecStatus::SpawnError), "spawnError");
}

TEST(CompileExec, WallBudgetResolvesEnvThenDefault)
{
    const char* saved = std::getenv("MACROSS_COMPILE_TIMEOUT_MS");
    std::string savedCopy = saved ? saved : "";

    ::unsetenv("MACROSS_COMPILE_TIMEOUT_MS");
    SpawnLimits limits;
    EXPECT_EQ(resolveWallBudgetMs(limits), 120000);

    ::setenv("MACROSS_COMPILE_TIMEOUT_MS", "4500", 1);
    EXPECT_EQ(resolveWallBudgetMs(limits), 4500);

    // An explicit limit beats the environment.
    limits.wallMs = 777;
    EXPECT_EQ(resolveWallBudgetMs(limits), 777);

    // Invalid overrides fall back to the default (with a warning)
    // instead of silently becoming 0 through a bare strtoll.
    limits.wallMs = 0;
    ::setenv("MACROSS_COMPILE_TIMEOUT_MS", "abc", 1);
    EXPECT_EQ(resolveWallBudgetMs(limits), 120000);
    ::setenv("MACROSS_COMPILE_TIMEOUT_MS", "4500garbage", 1);
    EXPECT_EQ(resolveWallBudgetMs(limits), 120000);
    ::setenv("MACROSS_COMPILE_TIMEOUT_MS", "0", 1);
    EXPECT_EQ(resolveWallBudgetMs(limits), 120000);
    ::setenv("MACROSS_COMPILE_TIMEOUT_MS", "-200", 1);
    EXPECT_EQ(resolveWallBudgetMs(limits), 120000);

    if (saved)
        ::setenv("MACROSS_COMPILE_TIMEOUT_MS", savedCopy.c_str(), 1);
    else
        ::unsetenv("MACROSS_COMPILE_TIMEOUT_MS");
}

TEST(CompileExec, SplitArgsHandlesWhitespaceRuns)
{
    EXPECT_EQ(splitArgs("-O2  -g\t-shared"),
              (std::vector<std::string>{"-O2", "-g", "-shared"}));
    EXPECT_TRUE(splitArgs("").empty());
    EXPECT_TRUE(splitArgs("   ").empty());
}

TEST(CompileExec, ExcerptPrefixesAndTruncates)
{
    std::string text;
    for (int i = 0; i < 50; ++i)
        text += "line" + std::to_string(i) + "\n";
    std::string ex = excerptLines(text, "cc", 40);
    EXPECT_NE(ex.find("cc: line0"), std::string::npos) << ex;
    EXPECT_NE(ex.find("cc: line39"), std::string::npos) << ex;
    EXPECT_EQ(ex.find("line40"), std::string::npos) << ex;
    EXPECT_NE(ex.find("more line"), std::string::npos) << ex;

    // Short text passes through untruncated, still tagged.
    std::string shortEx = excerptLines("only\n", "cc", 40);
    EXPECT_NE(shortEx.find("cc: only"), std::string::npos);
    EXPECT_EQ(shortEx.find("more line"), std::string::npos);
}

} // namespace
} // namespace macross::native
