/**
 * @file
 * Integration tests for the native engine's crash containment: the
 * quarantine negative-cache (one recompile retry, then permanent
 * skip, cleared by a healthy run or a cache reset), the degradation
 * ladder (an injected SIGSEGV inside emitted code degrades the
 * serial Runner — and the ParallelRunner — to the bytecode VM with
 * bit-identical output), the --degrade off policy (the typed
 * NativeFaultError propagates), and the typed compile faults
 * (wedged-compiler timeout, compiler stderr surfaced in the
 * diagnostic).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <memory>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "interp/parallel_runner.h"
#include "interp/runner.h"
#include "multicore/partition.h"
#include "native/native_engine.h"
#include "native/native_fault.h"
#include "native/quarantine.h"
#include "support/fault.h"
#include "vectorizer/pipeline.h"

namespace macross::native {
namespace {

namespace fs = std::filesystem;

std::string
freshCacheDir(const std::string& tag)
{
    std::string dir =
        ::testing::TempDir() + "macross_crash_cache_" + tag;
    fs::remove_all(dir);
    return dir;
}

vectorizer::CompiledProgram
smallProgram()
{
    return vectorizer::compileScalar(
        benchmarks::makeRunningExample());
}

class CrashContainment : public ::testing::Test {
  protected:
    void SetUp() override
    {
        support::FaultInjector::instance().reset();
    }
    void TearDown() override
    {
        support::FaultInjector::instance().reset();
    }

    /**
     * Arm the steady-crash site: raise a real SIGSEGV (caught by the
     * signal guard) on the first fire whose partition payload
     * matches — once only, like the CLI's native-crash injection.
     * @p want_partition -1 matches the serial whole-program path;
     * >= 0 a specific parallel partition; kAnyPartition everything.
     */
    static constexpr long kAnyPartition = -2;
    void armSteadyCrash(long want_partition)
    {
        auto fired = std::make_shared<std::atomic<bool>>(false);
        support::FaultInjector::instance().arm(
            "native.steady.crash",
            [want_partition, fired](std::int64_t* value) {
                if (want_partition != kAnyPartition &&
                    (!value || *value != want_partition))
                    return;
                if (fired->exchange(true))
                    return;
                raise(SIGSEGV);
            });
    }
};

TEST_F(CrashContainment, QuarantineSidecarRoundtrip)
{
    std::string dir = freshCacheDir("sidecar");
    fs::create_directories(dir);
    const std::string so = dir + "/entry.so";

    quarantine::Status s = quarantine::status(so);
    EXPECT_EQ(s.failures, 0);
    EXPECT_FALSE(s.distrusted());

    quarantine::recordFailure(so, "first crash");
    s = quarantine::status(so);
    EXPECT_EQ(s.failures, 1);
    EXPECT_TRUE(s.distrusted());
    EXPECT_FALSE(s.quarantined());
    EXPECT_EQ(s.reason, "first crash");

    quarantine::recordFailure(so, "second crash");
    s = quarantine::status(so);
    EXPECT_EQ(s.failures, 2);
    EXPECT_TRUE(s.quarantined());
    EXPECT_EQ(s.reason, "second crash");

    quarantine::clear(so);
    EXPECT_EQ(quarantine::status(so).failures, 0);
    EXPECT_FALSE(fs::exists(quarantine::sidecarPath(so)));
}

TEST_F(CrashContainment, CrashedEntryGetsOneRecompileThenQuarantine)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("retry_then_skip");
    auto p = smallProgram();

    std::string soPath;
    {
        NativeProgram first(p.graph, p.schedule, opts);
        soPath = first.stats().soPath;
    }

    // One recorded crash: the cached object is distrusted. The next
    // construction must skip the hit and recompile — that recompile
    // IS the one retry.
    quarantine::recordFailure(soPath, "recorded test crash");
    {
        NativeProgram second(p.graph, p.schedule, opts);
        EXPECT_FALSE(second.stats().cacheHit);
        EXPECT_EQ(second.stats().quarantineFailures, 1);
        EXPECT_EQ(second.stats().quarantineReason,
                  "recorded test crash");

        // A clean steady batch through the recompiled object clears
        // the sidecar: a one-off corruption does not force a
        // recompile forever.
        second.init();
        second.runSteady(2);
        EXPECT_EQ(quarantine::status(soPath).failures, 0);
    }

    // Two recorded crashes: the source itself is judged poisoned and
    // the entry is permanently skipped with a typed fault.
    quarantine::recordFailure(soPath, "crash one");
    quarantine::recordFailure(soPath, "crash two");
    try {
        NativeProgram third(p.graph, p.schedule, opts);
        FAIL() << "quarantined entry was loaded";
    } catch (const NativeFaultError& e) {
        EXPECT_EQ(e.record().kind, NativeFaultKind::Quarantined);
        EXPECT_EQ(e.record().phase, "cache");
        EXPECT_NE(std::string(e.what()).find("quarantined"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(e.record().message.find("crash two"),
                  std::string::npos)
            << e.record().message;
    }

    // Resetting the cache dir lifts the quarantine: a clean build in
    // a fresh dir runs normally.
    NativeOptions fresh;
    fresh.cacheDir = freshCacheDir("retry_then_skip_reset");
    NativeProgram fourth(p.graph, p.schedule, fresh);
    fourth.init();
    fourth.runSteady(2);
    EXPECT_GT(fourth.capturedSize(), 0u);
}

TEST_F(CrashContainment, InjectedCrashDegradesSerialRunnerBitIdentical)
{
    auto p = smallProgram();

    interp::Runner vm(p.graph, p.schedule, nullptr,
                      interp::EngineConfig(
                          interp::ExecEngine::Bytecode));
    vm.runInit();
    vm.runSteady(5);

    armSteadyCrash(/*want_partition=*/-1);
    interp::EngineConfig config(interp::ExecEngine::Native);
    config.native.cacheDir = freshCacheDir("serial_degrade");
    config.degrade = interp::DegradeMode::Auto;
    interp::Runner r(p.graph, p.schedule, nullptr, config);
    r.runInit();
    r.runSteady(5);

    EXPECT_TRUE(r.degradedFromNative());
    EXPECT_TRUE(r.degradeVerified());
    ASSERT_EQ(r.nativeFaults().size(), 1u);
    const NativeFaultRecord& rec = r.nativeFaults()[0];
    EXPECT_EQ(rec.kind, NativeFaultKind::Crash);
    EXPECT_EQ(rec.signal, SIGSEGV);
    EXPECT_EQ(rec.signalName, "SIGSEGV");
    EXPECT_EQ(rec.phase, "steady");
    EXPECT_EQ(rec.partition, -1);

    // The degraded run is the bytecode run, bit for bit.
    testutil::expectSameStream(vm.captured(), r.captured());

    // And the stats tell the whole story.
    json::Value stats = r.statsToJson();
    EXPECT_EQ(stats.find("engine")->asString(), "native");
    const json::Value* nat = stats.find("native");
    ASSERT_NE(nat, nullptr);
    EXPECT_TRUE(nat->find("degraded")->asBool());
    EXPECT_EQ(nat->find("degradedTo")->asString(), "bytecode");
    EXPECT_TRUE(nat->find("degradeVerified")->asBool());
    const json::Value* faults = nat->find("faults");
    ASSERT_NE(faults, nullptr);
    ASSERT_EQ(faults->size(), 1u);
    EXPECT_EQ(faults->at(0).find("kind")->asString(), "crash");
    EXPECT_EQ(faults->at(0).find("signalName")->asString(),
              "SIGSEGV");
}

TEST_F(CrashContainment, InjectedCrashWithDegradeOffThrowsTyped)
{
    auto p = smallProgram();
    armSteadyCrash(/*want_partition=*/-1);
    interp::EngineConfig config(interp::ExecEngine::Native);
    config.native.cacheDir = freshCacheDir("serial_off");
    // DegradeMode::Off is the default: faults propagate.
    interp::Runner r(p.graph, p.schedule, nullptr, config);
    r.runInit();
    try {
        r.runSteady(3);
        FAIL() << "crash was swallowed under DegradeMode::Off";
    } catch (const NativeFaultError& e) {
        EXPECT_EQ(e.record().kind, NativeFaultKind::Crash);
        EXPECT_EQ(e.record().signal, SIGSEGV);
        EXPECT_EQ(e.record().batchIndex, 0);
    }
    EXPECT_FALSE(r.degradedFromNative());
    ASSERT_EQ(r.nativeFaults().size(), 1u);

    // The crash was recorded against the cache entry.
    EXPECT_GE(
        quarantine::status(r.nativeStats()->soPath).failures, 1);
}

TEST_F(CrashContainment, ParallelCrashFallsBackToSerialAndMatches)
{
    auto p = smallProgram();

    machine::CostSink cost(machine::coreI7());
    interp::Runner vm(p.graph, p.schedule, &cost,
                      interp::EngineConfig(
                          interp::ExecEngine::Bytecode));
    vm.runInit();
    vm.runSteady(6);
    std::vector<double> weights(p.graph.actors.size());
    for (const auto& a : p.graph.actors)
        weights[a.id] = cost.actorCycles(a.id);
    multicore::Partition part = multicore::partitionGreedy(
        p.graph, p.schedule, weights, 2);

    // Crash whichever partition probes the site first (payload >= 0
    // excludes the serial fallback's whole-program replay, which
    // passes -1 — the fallback must stay healthy).
    auto fired = std::make_shared<std::atomic<bool>>(false);
    support::FaultInjector::instance().arm(
        "native.steady.crash",
        [fired](std::int64_t* value) {
            if (!value || *value < 0)
                return;
            if (fired->exchange(true))
                return;
            raise(SIGSEGV);
        });

    interp::EngineConfig config(interp::ExecEngine::Native);
    config.native.cacheDir = freshCacheDir("parallel_degrade");
    config.degrade = interp::DegradeMode::Auto;
    interp::ParallelRunner pr(p.graph, p.schedule, part, nullptr,
                              config);
    pr.runInit();
    pr.runSteady(6);

    EXPECT_TRUE(pr.degradedToSerial());
    ASSERT_GE(pr.nativeFaults().size(), 1u);
    const NativeFaultRecord& rec = pr.nativeFaults()[0];
    EXPECT_EQ(rec.kind, NativeFaultKind::Crash);
    EXPECT_EQ(rec.signal, SIGSEGV);
    EXPECT_GE(rec.partition, 0);
    EXPECT_EQ(rec.phase, "steady");

    ASSERT_GE(pr.faults().size(), 1u);
    EXPECT_EQ(pr.faults()[0].kind, "nativeFault");
    EXPECT_TRUE(pr.faults()[0].fallbackUsed);

    testutil::expectSameStream(vm.captured(), pr.captured());

    // The merged stats carry the structured record under
    // native.faults[].
    json::Value stats = pr.statsToJson();
    const json::Value* nat = stats.find("native");
    ASSERT_NE(nat, nullptr);
    const json::Value* faults = nat->find("faults");
    ASSERT_NE(faults, nullptr);
    ASSERT_GE(faults->size(), 1u);
    EXPECT_EQ(faults->at(0).find("kind")->asString(), "crash");
    EXPECT_GE(faults->at(0).find("partition")->asInt(), 0);
}

TEST_F(CrashContainment, WedgedCompilerTimesOutWithTypedFault)
{
    // The injection wedges the host compile (replacing it with a
    // sleep) and shrinks the wall budget, so the whole test is
    // bounded by the budget, not by a 30 s sleep.
    support::FaultInjector::instance().arm(
        "native.compile.timeout",
        [](std::int64_t* value) {
            if (value)
                *value = 250;
        },
        /*max_fires=*/1);

    NativeOptions opts;
    opts.cacheDir = freshCacheDir("wedged_compile");
    auto p = smallProgram();
    try {
        NativeProgram prog(p.graph, p.schedule, opts);
        FAIL() << "wedged compile did not fault";
    } catch (const NativeFaultError& e) {
        EXPECT_EQ(e.record().kind, NativeFaultKind::CompileTimeout);
        EXPECT_EQ(e.record().phase, "compile");
        EXPECT_GE(e.record().wallMs, 200.0);
        EXPECT_NE(e.record().message.find("timed out"),
                  std::string::npos)
            << e.record().message;
    }
}

TEST_F(CrashContainment, CompileErrorSurfacesCompilerStderr)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("bad_flags");
    opts.flags = "-O1 -fno-such-flag-macross-xyz";
    auto p = smallProgram();
    try {
        NativeProgram prog(p.graph, p.schedule, opts);
        FAIL() << "bad compiler flag did not fault";
    } catch (const NativeFaultError& e) {
        EXPECT_EQ(e.record().kind, NativeFaultKind::CompileExit);
        EXPECT_NE(e.record().exitCode, 0);
        // The diagnostic embeds the compiler's own stderr, each line
        // prefixed with the source path.
        EXPECT_NE(e.record().message.find("no-such-flag-macross-xyz"),
                  std::string::npos)
            << e.record().message;
        EXPECT_NE(e.record().message.find(".cpp:"), std::string::npos)
            << e.record().message;
    }
}

TEST_F(CrashContainment, InjectedDlopenFailureIsALoadFault)
{
    support::FaultInjector::instance().arm(
        "native.dlopen.fail", [](std::int64_t*) {},
        /*max_fires=*/1);
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("dlopen_fail");
    auto p = smallProgram();
    try {
        NativeProgram prog(p.graph, p.schedule, opts);
        FAIL() << "injected dlopen failure did not fault";
    } catch (const NativeFaultError& e) {
        EXPECT_EQ(e.record().kind, NativeFaultKind::LoadFailed);
        EXPECT_EQ(e.record().phase, "load");
    }
}

} // namespace
} // namespace macross::native
