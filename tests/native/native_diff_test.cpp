/**
 * @file
 * Differential tests of the native execution engine, mirroring
 * tests/interp/engine_diff_test.cpp: emitted C++ compiled by the host
 * compiler must reproduce the interpreting engines exactly —
 * bit-identical captured output on every suite benchmark and a
 * battery of random programs, under scalar, macro-SIMDized, and
 * SAGU-transposed configurations, and across the SimdSpec lane
 * widths W ∈ {1, 4, 8}. W=1 is the scalar fallback layer; W>1 emits
 * the true-SIMD vector layer (GCC/clang vector extensions). The
 * "macro8" configuration SIMDizes for an 8-wide machine so W=8 runs
 * genuinely 8-wide chunks rather than degenerate 4-lane ones.
 *
 * Bit-identity is the default contract at every width (elementwise
 * vector FP is IEEE-rounded exactly like scalar FP, and libm calls
 * stay per-lane); the one sanctioned exception is a SimdSpec with
 * allowUlpDivergence, exercised by the ULP-mode test at the bottom
 * with -ffp-contract=fast.
 *
 * Modeled cycles are deliberately NOT compared here: the native
 * engine measures wall clock instead of accumulating the machine
 * model (see DESIGN.md §12).
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/random_graph.h"
#include "benchmarks/suite.h"

namespace macross::interp {
namespace {

std::vector<Value>
capturedWith(const vectorizer::CompiledProgram& p,
             const EngineConfig& config, std::int64_t n)
{
    Runner r(p.graph, p.schedule, nullptr, config);
    r.runUntilCaptured(n);
    return {r.captured().begin(), r.captured().begin() + n};
}

struct Config {
    const char* name;
    bool simdize;
    bool sagu;
    int machineWidth;         ///< IR vector width the simdizer targets.
    std::vector<int> widths;  ///< Native lane widths to differentiate.
};

const Config kConfigs[] = {
    {"scalar", false, false, 4, {1, 4}},
    {"macro", true, false, 4, {1, 4, 8}},
    {"macro+sagu", true, true, 4, {1, 4}},
    {"macro8", true, false, 8, {1, 8}},
};

machine::MachineDesc
machineFor(const Config& cfg)
{
    if (cfg.machineWidth == 8)
        return machine::wide8();
    return cfg.sagu ? machine::coreI7WithSagu() : machine::coreI7();
}

/**
 * Native output at every configured lane width must match both
 * interpreting engines bit for bit. The interpreter references are
 * captured once; each width then recompiles the same program under a
 * different SimdSpec (distinct cache entries — the spec is part of
 * the object-cache key).
 */
void
expectNativeMatchesUnder(const graph::StreamPtr& program,
                         const Config& cfg, std::int64_t n)
{
    vectorizer::CompiledProgram p;
    if (cfg.simdize) {
        vectorizer::SimdizeOptions opts;
        opts.forceSimdize = true;
        opts.enableSagu = cfg.sagu;
        opts.machine = machineFor(cfg);
        p = vectorizer::macroSimdize(program, opts);
    } else {
        p = vectorizer::compileScalar(program);
    }

    std::vector<Value> vm =
        capturedWith(p, EngineConfig(ExecEngine::Bytecode), n);
    std::vector<Value> tree =
        capturedWith(p, EngineConfig(ExecEngine::Tree), n);
    testutil::expectSameStream(vm, tree);

    for (int w : cfg.widths) {
        SCOPED_TRACE("native W=" + std::to_string(w));
        EngineConfig config(ExecEngine::Native);
        config.simd.laneWidth = w;
        testutil::expectSameStream(vm, capturedWith(p, config, n));
    }
}

class SuiteNativeDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteNativeDiff, NativeMatchesInterpretersAtAllWidths)
{
    auto [benchIdx, cfgIdx] = GetParam();
    auto suite = benchmarks::standardSuite();
    ASSERT_LT(static_cast<std::size_t>(benchIdx), suite.size());
    const auto& bench = suite[benchIdx];
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE(bench.name + std::string(" / ") + cfg.name);
    expectNativeMatchesUnder(bench.program, cfg, 200);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, SuiteNativeDiff,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = benchmarks::standardSuite();
        std::string n = suite[std::get<0>(info.param)].name +
                        std::string("_") +
                        kConfigs[std::get<1>(info.param)].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

class RandomNativeDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomNativeDiff, NativeMatchesInterpretersAtAllWidths)
{
    auto [seedIdx, cfgIdx] = GetParam();
    std::uint64_t seed = 7100 + seedIdx;
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE("seed " + std::to_string(seed) + " / " + cfg.name);
    expectNativeMatchesUnder(benchmarks::randomProgram(seed), cfg,
                             120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNativeDiff,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 4)));

// The sanctioned exception to bit-identity: a SimdSpec that allows
// ULP-bounded divergence, compiled with FP contraction enabled. The
// emitted object must advertise exact=0 through the ABI, and its
// output must stay within a small ULP envelope of the bytecode VM.
// Each fused a*b+c drops one rounding (~1 ULP locally), and the
// FFT's butterfly chains compound a few of them — observed worst on
// this suite is 6 ULPs, so 16 gives slack without ever excusing a
// structural divergence (a real bug is thousands of ULPs away).
TEST(NativeUlpMode, ContractedFpStaysWithinUlpEnvelope)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.machine = machine::coreI7();
    auto p = vectorizer::macroSimdize(benchmarks::makeFft(), opts);

    const std::int64_t n = 200;
    std::vector<Value> vm =
        capturedWith(p, EngineConfig(ExecEngine::Bytecode), n);

    EngineConfig config(ExecEngine::Native);
    config.simd.laneWidth = 4;
    config.simd.allowUlpDivergence = true;
    config.native.flags = "-O3 -march=native -ffp-contract=fast";
    Runner r(p.graph, p.schedule, nullptr, config);
    r.runUntilCaptured(n);
    ASSERT_NE(r.nativeStats(), nullptr);
    EXPECT_FALSE(r.nativeStats()->exact);
    std::vector<Value> native(r.captured().begin(),
                              r.captured().begin() + n);
    testutil::expectStreamsWithinUlp(vm, native, 16);
}

} // namespace
} // namespace macross::interp
