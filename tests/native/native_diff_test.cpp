/**
 * @file
 * Differential tests of the native execution engine, mirroring
 * tests/interp/engine_diff_test.cpp: emitted C++ compiled by the host
 * compiler (-O3 -march=native, so the portable Vec type really
 * autovectorizes) must reproduce the interpreting engines exactly —
 * bit-identical captured output on every suite benchmark and a
 * battery of random programs, under scalar, macro-SIMDized, and
 * SAGU-transposed configurations.
 *
 * Modeled cycles are deliberately NOT compared here: the native
 * engine measures wall clock instead of accumulating the machine
 * model (see DESIGN.md §12).
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/random_graph.h"
#include "benchmarks/suite.h"

namespace macross::interp {
namespace {

std::vector<Value>
capturedWith(const vectorizer::CompiledProgram& p, ExecEngine engine,
             std::int64_t n)
{
    Runner r(p.graph, p.schedule, nullptr, engine);
    r.runUntilCaptured(n);
    return {r.captured().begin(), r.captured().begin() + n};
}

/** Native output must match both interpreting engines bit for bit. */
void
expectNativeMatchesInterpreters(const vectorizer::CompiledProgram& p,
                                std::int64_t n)
{
    std::vector<Value> native =
        capturedWith(p, ExecEngine::Native, n);
    testutil::expectSameStream(capturedWith(p, ExecEngine::Bytecode, n),
                               native);
    testutil::expectSameStream(capturedWith(p, ExecEngine::Tree, n),
                               native);
}

struct Config {
    const char* name;
    bool simdize;
    bool sagu;
};

const Config kConfigs[] = {
    {"scalar", false, false},
    {"macro", true, false},
    {"macro+sagu", true, true},
};

void
expectNativeMatchesUnder(const graph::StreamPtr& program,
                         const Config& cfg, std::int64_t n)
{
    if (!cfg.simdize) {
        expectNativeMatchesInterpreters(
            vectorizer::compileScalar(program), n);
        return;
    }
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.enableSagu = cfg.sagu;
    opts.machine =
        cfg.sagu ? machine::coreI7WithSagu() : machine::coreI7();
    expectNativeMatchesInterpreters(
        vectorizer::macroSimdize(program, opts), n);
}

class SuiteNativeDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteNativeDiff, NativeMatchesInterpreters)
{
    auto [benchIdx, cfgIdx] = GetParam();
    auto suite = benchmarks::standardSuite();
    ASSERT_LT(static_cast<std::size_t>(benchIdx), suite.size());
    const auto& bench = suite[benchIdx];
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE(bench.name + std::string(" / ") + cfg.name);
    expectNativeMatchesUnder(bench.program, cfg, 200);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllConfigs, SuiteNativeDiff,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Range(0, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = benchmarks::standardSuite();
        std::string n = suite[std::get<0>(info.param)].name +
                        std::string("_") +
                        kConfigs[std::get<1>(info.param)].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

class RandomNativeDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomNativeDiff, NativeMatchesInterpreters)
{
    auto [seedIdx, cfgIdx] = GetParam();
    std::uint64_t seed = 7100 + seedIdx;
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE("seed " + std::to_string(seed) + " / " + cfg.name);
    expectNativeMatchesUnder(benchmarks::randomProgram(seed), cfg,
                             120);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNativeDiff,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 3)));

} // namespace
} // namespace macross::interp
