/**
 * @file
 * Unit tests for the native engine's driver machinery: host-compiler
 * detection, the content-hashed object cache (hit, miss, corrupted
 * entry), the hermetic cache-directory resolution, and the Runner
 * integration (stats JSON, whole-program restriction).
 */
#include "native/native_engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "interp/runner.h"
#include "support/diagnostics.h"
#include "vectorizer/pipeline.h"

namespace macross::native {
namespace {

namespace fs = std::filesystem;

/** Fresh, empty cache dir under the test temp root. */
std::string
freshCacheDir(const std::string& tag)
{
    std::string dir =
        ::testing::TempDir() + "macross_native_cache_" + tag;
    fs::remove_all(dir);
    return dir;
}

vectorizer::CompiledProgram
smallProgram()
{
    return vectorizer::compileScalar(
        benchmarks::makeRunningExample());
}

TEST(NativeEngine, DetectsSomeHostCompiler)
{
    // The toolchain that built this test is on PATH, so detection
    // must succeed and name a runnable command.
    std::string cxx = detectHostCompiler();
    EXPECT_FALSE(cxx.empty());
}

TEST(NativeEngine, MissingCompilerIsFatal)
{
    NativeOptions opts;
    opts.compiler = "/nonexistent/macross-no-such-compiler";
    opts.cacheDir = freshCacheDir("missing_compiler");
    auto p = smallProgram();
    EXPECT_THROW(NativeProgram(p.graph, p.schedule, opts),
                 FatalError);
}

TEST(NativeEngine, EnvCompilerPinIsAuthoritative)
{
    // A MACROSS_NATIVE_CXX pointing at a missing compiler must fail,
    // not silently fall back to a different toolchain.
    const char* saved = std::getenv("MACROSS_NATIVE_CXX");
    std::string savedCopy = saved ? saved : "";
    ::setenv("MACROSS_NATIVE_CXX",
             "/nonexistent/macross-no-such-compiler", 1);
    EXPECT_THROW(detectHostCompiler(), FatalError);
    if (saved)
        ::setenv("MACROSS_NATIVE_CXX", savedCopy.c_str(), 1);
    else
        ::unsetenv("MACROSS_NATIVE_CXX");
}

TEST(NativeEngine, CacheMissThenHit)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("miss_then_hit");
    auto p = smallProgram();

    NativeProgram first(p.graph, p.schedule, opts);
    EXPECT_FALSE(first.stats().cacheHit);
    EXPECT_GT(first.stats().compileMillis, 0.0);
    EXPECT_TRUE(fs::exists(first.stats().soPath));

    NativeProgram second(p.graph, p.schedule, opts);
    EXPECT_TRUE(second.stats().cacheHit);
    EXPECT_EQ(second.stats().soPath, first.stats().soPath);
    EXPECT_EQ(second.stats().sourceHash, first.stats().sourceHash);

    // Both instances are independent heap programs off one loaded
    // object: running them back to back must give identical streams.
    first.init();
    first.runSteady(3);
    second.init();
    second.runSteady(3);
    ASSERT_GT(first.capturedSize(), 0u);
    testutil::expectSameStream(first.captured(), second.captured());
}

TEST(NativeEngine, FlagsParticipateInCacheKey)
{
    std::string dir = freshCacheDir("flags_key");
    auto p = smallProgram();
    NativeOptions o1;
    o1.cacheDir = dir;
    o1.flags = "-O1 -ffp-contract=off";
    NativeOptions o2 = o1;
    o2.flags = "-O2 -ffp-contract=off";

    NativeProgram a(p.graph, p.schedule, o1);
    NativeProgram b(p.graph, p.schedule, o2);
    EXPECT_FALSE(a.stats().cacheHit);
    EXPECT_FALSE(b.stats().cacheHit);
    EXPECT_NE(a.stats().sourceHash, b.stats().sourceHash);
    EXPECT_NE(a.stats().soPath, b.stats().soPath);
}

TEST(NativeEngine, CorruptedCacheEntryIsRecompiled)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("corrupt");
    auto p = smallProgram();

    std::string soPath;
    std::vector<interp::Value> reference;
    {
        NativeProgram first(p.graph, p.schedule, opts);
        first.init();
        first.runSteady(3);
        soPath = first.stats().soPath;
        reference = first.captured();
    }
    // Smash the cached object — unlink first so any lingering mapping
    // of the old inode stays intact. The next load must notice
    // (dlopen failure), recompile from source, and still run
    // correctly.
    fs::remove(soPath);
    {
        std::ofstream out(soPath, std::ios::binary);
        out << "this is not a shared object";
    }
    NativeProgram second(p.graph, p.schedule, opts);
    EXPECT_FALSE(second.stats().cacheHit);
    EXPECT_GT(second.stats().compileMillis, 0.0);
    second.init();
    second.runSteady(3);
    testutil::expectSameStream(reference, second.captured());

    // And the repaired entry serves hits again.
    NativeProgram third(p.graph, p.schedule, opts);
    EXPECT_TRUE(third.stats().cacheHit);
}

TEST(NativeEngine, CacheDirRespectsEnvironment)
{
    const char* saved = std::getenv("MACROSS_CACHE_DIR");
    std::string savedCopy = saved ? saved : "";
    std::string dir = freshCacheDir("env_dir");
    ::setenv("MACROSS_CACHE_DIR", dir.c_str(), 1);
    std::string resolved = resolveCacheDir(NativeOptions{});
    if (saved)
        ::setenv("MACROSS_CACHE_DIR", savedCopy.c_str(), 1);
    else
        ::unsetenv("MACROSS_CACHE_DIR");
    EXPECT_EQ(resolved, dir);
    EXPECT_TRUE(fs::is_directory(dir));

    // An explicit option still beats the environment.
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("explicit_dir");
    EXPECT_EQ(resolveCacheDir(opts), opts.cacheDir);
}

TEST(NativeEngine, RunnerReportsNativeStatsJson)
{
    auto p = smallProgram();
    interp::Runner r(p.graph, p.schedule, nullptr,
                     interp::ExecEngine::Native);
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("runner_stats");
    r.setNativeOptions(opts);
    r.runInit();
    r.runSteady(5);
    ASSERT_NE(r.nativeStats(), nullptr);

    json::Value stats = r.statsToJson();
    EXPECT_EQ(stats.find("engine")->asString(), "native");
    const json::Value* nat = stats.find("native");
    ASSERT_NE(nat, nullptr);
    EXPECT_FALSE(nat->find("compiler")->asString().empty());
    EXPECT_FALSE(nat->find("soPath")->asString().empty());
    EXPECT_FALSE(nat->find("cacheHit")->asBool());
    EXPECT_GT(nat->find("compileMillis")->asDouble(), 0.0);
    EXPECT_GE(nat->find("steadyWallMicros")->asDouble(), 0.0);

    // The runner mirrors the native capture stream.
    interp::Runner vm(p.graph, p.schedule, nullptr,
                      interp::ExecEngine::Bytecode);
    vm.runInit();
    vm.runSteady(5);
    testutil::expectSameStream(vm.captured(), r.captured());
}

TEST(NativeEngine, PerActorNativeOverrideIsRejected)
{
    auto p = smallProgram();
    interp::Runner r(p.graph, p.schedule, nullptr,
                     interp::ExecEngine::Bytecode);
    for (const auto& a : p.graph.actors) {
        if (a.isFilter()) {
            interp::ActorExecConfig cfg;
            cfg.engine = interp::ExecEngine::Native;
            r.setActorConfig(a.id, cfg);
            break;
        }
    }
    EXPECT_THROW(r.runUntilCaptured(10), PanicError);
}

} // namespace
} // namespace macross::native
