/**
 * @file
 * Unit tests for the native engine's driver machinery: host-compiler
 * detection, the content-hashed object cache (hit, miss, corrupted
 * entry, SimdSpec keying), ABI v2 verification (stale-stub rejection),
 * the SIMD probe and refuse-and-fallback path, the hermetic
 * cache-directory resolution, and the Runner integration (EngineConfig,
 * stats JSON, whole-program restriction).
 */
#include "native/native_engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "codegen/emit_cpp.h"
#include "interp/runner.h"
#include "native/simd_probe.h"
#include "support/diagnostics.h"
#include "vectorizer/pipeline.h"

namespace macross::native {
namespace {

namespace fs = std::filesystem;

/** Fresh, empty cache dir under the test temp root. */
std::string
freshCacheDir(const std::string& tag)
{
    std::string dir =
        ::testing::TempDir() + "macross_native_cache_" + tag;
    fs::remove_all(dir);
    return dir;
}

vectorizer::CompiledProgram
smallProgram()
{
    return vectorizer::compileScalar(
        benchmarks::makeRunningExample());
}

TEST(NativeEngine, DetectsSomeHostCompiler)
{
    // The toolchain that built this test is on PATH, so detection
    // must succeed and name a runnable command.
    std::string cxx = detectHostCompiler();
    EXPECT_FALSE(cxx.empty());
}

TEST(NativeEngine, MissingCompilerIsFatal)
{
    NativeOptions opts;
    opts.compiler = "/nonexistent/macross-no-such-compiler";
    opts.cacheDir = freshCacheDir("missing_compiler");
    auto p = smallProgram();
    EXPECT_THROW(NativeProgram(p.graph, p.schedule, opts),
                 FatalError);
}

TEST(NativeEngine, EnvCompilerPinIsAuthoritative)
{
    // A MACROSS_NATIVE_CXX pointing at a missing compiler must fail,
    // not silently fall back to a different toolchain.
    const char* saved = std::getenv("MACROSS_NATIVE_CXX");
    std::string savedCopy = saved ? saved : "";
    ::setenv("MACROSS_NATIVE_CXX",
             "/nonexistent/macross-no-such-compiler", 1);
    EXPECT_THROW(detectHostCompiler(), FatalError);
    if (saved)
        ::setenv("MACROSS_NATIVE_CXX", savedCopy.c_str(), 1);
    else
        ::unsetenv("MACROSS_NATIVE_CXX");
}

TEST(NativeEngine, CacheMissThenHit)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("miss_then_hit");
    auto p = smallProgram();

    NativeProgram first(p.graph, p.schedule, opts);
    EXPECT_FALSE(first.stats().cacheHit);
    EXPECT_GT(first.stats().compileMillis, 0.0);
    EXPECT_TRUE(fs::exists(first.stats().soPath));

    NativeProgram second(p.graph, p.schedule, opts);
    EXPECT_TRUE(second.stats().cacheHit);
    EXPECT_EQ(second.stats().soPath, first.stats().soPath);
    EXPECT_EQ(second.stats().sourceHash, first.stats().sourceHash);

    // Both instances are independent heap programs off one loaded
    // object: running them back to back must give identical streams.
    first.init();
    first.runSteady(3);
    second.init();
    second.runSteady(3);
    ASSERT_GT(first.capturedSize(), 0u);
    testutil::expectSameStream(first.captured(), second.captured());
}

TEST(NativeEngine, FlagsParticipateInCacheKey)
{
    std::string dir = freshCacheDir("flags_key");
    auto p = smallProgram();
    NativeOptions o1;
    o1.cacheDir = dir;
    o1.flags = "-O1 -ffp-contract=off";
    NativeOptions o2 = o1;
    o2.flags = "-O2 -ffp-contract=off";

    NativeProgram a(p.graph, p.schedule, o1);
    NativeProgram b(p.graph, p.schedule, o2);
    EXPECT_FALSE(a.stats().cacheHit);
    EXPECT_FALSE(b.stats().cacheHit);
    EXPECT_NE(a.stats().sourceHash, b.stats().sourceHash);
    EXPECT_NE(a.stats().soPath, b.stats().soPath);
}

TEST(NativeEngine, CorruptedCacheEntryIsRecompiled)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("corrupt");
    auto p = smallProgram();

    std::string soPath;
    std::vector<interp::Value> reference;
    {
        NativeProgram first(p.graph, p.schedule, opts);
        first.init();
        first.runSteady(3);
        soPath = first.stats().soPath;
        reference = first.captured();
    }
    // Smash the cached object — unlink first so any lingering mapping
    // of the old inode stays intact. The next load must notice
    // (dlopen failure), recompile from source, and still run
    // correctly.
    fs::remove(soPath);
    {
        std::ofstream out(soPath, std::ios::binary);
        out << "this is not a shared object";
    }
    NativeProgram second(p.graph, p.schedule, opts);
    EXPECT_FALSE(second.stats().cacheHit);
    EXPECT_GT(second.stats().compileMillis, 0.0);
    second.init();
    second.runSteady(3);
    testutil::expectSameStream(reference, second.captured());

    // And the repaired entry serves hits again.
    NativeProgram third(p.graph, p.schedule, opts);
    EXPECT_TRUE(third.stats().cacheHit);
}

TEST(NativeEngine, SimdSpecParticipatesInCacheKey)
{
    std::string dir = freshCacheDir("simd_key");
    auto p = smallProgram();
    NativeOptions opts;
    opts.cacheDir = dir;

    codegen::SimdSpec scalar;
    scalar.laneWidth = 1;
    codegen::SimdSpec vec4;
    vec4.laneWidth = 4;

    NativeProgram a(p.graph, p.schedule, opts, scalar);
    NativeProgram b(p.graph, p.schedule, opts, vec4);
    EXPECT_FALSE(a.stats().cacheHit);
    EXPECT_FALSE(b.stats().cacheHit);
    EXPECT_NE(a.stats().sourceHash, b.stats().sourceHash);
    EXPECT_NE(a.stats().soPath, b.stats().soPath);
    EXPECT_EQ(a.stats().simdLanes, 1);
    EXPECT_EQ(b.stats().simdLanes, 4);

    // Same spec again: a hit on the spec-specific entry.
    NativeProgram c(p.graph, p.schedule, opts, vec4);
    EXPECT_TRUE(c.stats().cacheHit);
    EXPECT_EQ(c.stats().soPath, b.stats().soPath);
}

TEST(NativeEngine, LoadedObjectReportsAbiV2Lowering)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("abi_v2");
    auto p = smallProgram();
    codegen::SimdSpec spec;
    spec.laneWidth = 4;

    NativeProgram prog(p.graph, p.schedule, opts, spec);
    EXPECT_EQ(prog.stats().abiVersion, codegen::kNativeAbiVersion);
    EXPECT_EQ(prog.stats().simdLanes, 4);
    EXPECT_EQ(prog.stats().simdIsa, "auto");
    EXPECT_TRUE(prog.stats().exact);
    EXPECT_FALSE(prog.stats().simdFallback);
}

TEST(NativeEngine, StaleAbiVersionIsFatal)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("stale_abi");
    auto p = smallProgram();

    std::string soPath;
    {
        NativeProgram first(p.graph, p.schedule, opts);
        soPath = first.stats().soPath;
    }
    // Replace the cached entry with a deliberately stale stub: a
    // perfectly loadable shared object that reports ABI v1. Unlike a
    // corrupted entry, this must NOT be silently recompiled — the
    // cache key covers the source, so version skew at this path means
    // the toolchain and the engine disagree about the contract.
    const std::string stubCpp = opts.cacheDir + "/stale_stub.cpp";
    {
        std::ofstream out(stubCpp);
        out << "extern \"C\" int macross_abi_version() { return 1; }\n";
    }
    fs::remove(soPath);
    const std::string cmd = detectHostCompiler() +
                            " -shared -fPIC -o '" + soPath + "' '" +
                            stubCpp + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);

    try {
        NativeProgram second(p.graph, p.schedule, opts);
        FAIL() << "stale ABI stub was accepted";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        // The error must name both versions.
        EXPECT_NE(msg.find("ABI version 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("version 3"), std::string::npos) << msg;
    }
}

TEST(NativeEngine, ProbeReportsExecutableWidth)
{
    const int w = probeMaxLaneWidth();
    EXPECT_TRUE(w == 1 || w == 4 || w == 8 || w == 16) << w;
    EXPECT_FALSE(probeIsaName().empty());
}

TEST(NativeEngine, UnsupportedWidthFallsBackToScalar)
{
    // Pretend the host tops out at 4 lanes and ask for 8: the engine
    // must refuse the width and emit the scalar layer, visibly.
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("fallback");
    opts.maxLaneWidthOverride = 4;
    auto p = smallProgram();
    codegen::SimdSpec spec;
    spec.laneWidth = 8;

    NativeProgram prog(p.graph, p.schedule, opts, spec);
    EXPECT_TRUE(prog.stats().simdFallback);
    EXPECT_EQ(prog.stats().simdLanes, 1);
    EXPECT_EQ(prog.effectiveSpec().laneWidth, 1);

    // The fallback still runs and still matches the interpreter.
    prog.init();
    prog.runSteady(3);
    interp::Runner vm(p.graph, p.schedule);
    vm.runInit();
    vm.runSteady(3);
    ASSERT_GT(prog.capturedSize(), 0u);
    testutil::expectSameStream(vm.captured(), prog.captured());
}

TEST(NativeEngine, SupportedWidthIsNotRefused)
{
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("no_fallback");
    opts.maxLaneWidthOverride = 8;
    auto p = smallProgram();
    codegen::SimdSpec spec;
    spec.laneWidth = 8;

    NativeProgram prog(p.graph, p.schedule, opts, spec);
    EXPECT_FALSE(prog.stats().simdFallback);
    EXPECT_EQ(prog.stats().simdLanes, 8);
}

TEST(NativeEngine, CacheDirRespectsEnvironment)
{
    const char* saved = std::getenv("MACROSS_CACHE_DIR");
    std::string savedCopy = saved ? saved : "";
    std::string dir = freshCacheDir("env_dir");
    ::setenv("MACROSS_CACHE_DIR", dir.c_str(), 1);
    std::string resolved = resolveCacheDir(NativeOptions{});
    if (saved)
        ::setenv("MACROSS_CACHE_DIR", savedCopy.c_str(), 1);
    else
        ::unsetenv("MACROSS_CACHE_DIR");
    EXPECT_EQ(resolved, dir);
    EXPECT_TRUE(fs::is_directory(dir));

    // An explicit option still beats the environment.
    NativeOptions opts;
    opts.cacheDir = freshCacheDir("explicit_dir");
    EXPECT_EQ(resolveCacheDir(opts), opts.cacheDir);
}

TEST(NativeEngine, RunnerReportsNativeStatsJson)
{
    auto p = smallProgram();
    interp::EngineConfig config(interp::ExecEngine::Native);
    config.native.cacheDir = freshCacheDir("runner_stats");
    interp::Runner r(p.graph, p.schedule, nullptr, config);
    r.runInit();
    r.runSteady(5);
    ASSERT_NE(r.nativeStats(), nullptr);

    json::Value stats = r.statsToJson();
    EXPECT_EQ(stats.find("engine")->asString(), "native");
    const json::Value* nat = stats.find("native");
    ASSERT_NE(nat, nullptr);
    EXPECT_FALSE(nat->find("compiler")->asString().empty());
    EXPECT_FALSE(nat->find("soPath")->asString().empty());
    EXPECT_FALSE(nat->find("cacheHit")->asBool());
    EXPECT_GT(nat->find("compileMillis")->asDouble(), 0.0);
    EXPECT_GE(nat->find("steadyWallMicros")->asDouble(), 0.0);
    EXPECT_EQ(nat->find("abiVersion")->asInt(), 3);
    EXPECT_TRUE(nat->find("exact")->asBool());
    const json::Value* simd = nat->find("simd");
    ASSERT_NE(simd, nullptr);
    EXPECT_EQ(simd->find("laneWidth")->asInt(), 4);
    EXPECT_EQ(simd->find("isa")->asString(), "auto");
    EXPECT_FALSE(simd->find("fallback")->asBool());

    // The runner mirrors the native capture stream.
    interp::Runner vm(p.graph, p.schedule, nullptr,
                      interp::EngineConfig(
                          interp::ExecEngine::Bytecode));
    vm.runInit();
    vm.runSteady(5);
    testutil::expectSameStream(vm.captured(), r.captured());
}

TEST(NativeEngine, ConfigureAfterInitPanics)
{
    auto p = smallProgram();
    interp::Runner r(p.graph, p.schedule);
    r.runInit();
    EXPECT_THROW(
        r.configure(interp::EngineConfig(interp::ExecEngine::Tree)),
        PanicError);
}

TEST(NativeEngine, PerActorNativeOverrideIsRejected)
{
    auto p = smallProgram();
    interp::EngineConfig config(interp::ExecEngine::Bytecode);
    for (const auto& a : p.graph.actors) {
        if (a.isFilter()) {
            config.actorEngines[a.id] = interp::ExecEngine::Native;
            break;
        }
    }
    interp::Runner r(p.graph, p.schedule, nullptr, config);
    EXPECT_THROW(r.runUntilCaptured(10), PanicError);
}

} // namespace
} // namespace macross::native
