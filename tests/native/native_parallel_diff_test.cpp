/**
 * @file
 * Differential tests of the parallel native runtime: emitted per-core
 * sub-programs running over SPSC rings (ParallelRunner with
 * ExecEngine::Native) must reproduce both the serial native engine
 * and the bytecode VM bit for bit at 1, 2, and 4 threads, across the
 * whole benchmark suite and random programs, at lane widths
 * W ∈ {1, 4}. W=1 exercises the scalar emitted layer over rings; W=4
 * the true-SIMD layer, including block-granular ring publication on
 * SAGU-transposed crossing tapes (the macro+sagu configuration).
 *
 * The partition weights come from a modeled bytecode profiling run —
 * the same weights any caller of partitionGreedy would use — so the
 * partitions exercised here are the real ones, not synthetic splits.
 * Small batches force several batch barriers (and therefore emitted
 * flush_tail/flush_head paths) per run.
 *
 * Modeled cycles are NOT compared: the native engine measures wall
 * clock instead of accumulating the machine model (DESIGN.md §12).
 */
#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/random_graph.h"
#include "benchmarks/suite.h"
#include "interp/parallel_runner.h"
#include "multicore/partition.h"

namespace macross::interp {
namespace {

constexpr int kIters = 10;

struct Config {
    const char* name;
    bool simdize;
    bool sagu;
    std::vector<int> widths;  ///< Native lane widths to differentiate.
};

const Config kConfigs[] = {
    {"macro", true, false, {1, 4}},
    {"scalar", false, false, {4}},
    {"macro+sagu", true, true, {4}},
};

void
expectParallelNativeMatchesUnder(const graph::StreamPtr& program,
                                 const Config& cfg)
{
    machine::MachineDesc m =
        cfg.sagu ? machine::coreI7WithSagu() : machine::coreI7();
    vectorizer::CompiledProgram p;
    if (cfg.simdize) {
        vectorizer::SimdizeOptions opts;
        opts.forceSimdize = true;
        opts.enableSagu = cfg.sagu;
        opts.machine = m;
        p = vectorizer::macroSimdize(program, opts);
    } else {
        p = vectorizer::compileScalar(program);
    }

    // Bytecode reference run; its modeled per-actor cycles double as
    // the partition weights.
    machine::CostSink cost(m);
    Runner vm(p.graph, p.schedule, &cost,
              EngineConfig(ExecEngine::Bytecode));
    vm.runInit();
    vm.runSteady(kIters);
    std::vector<double> weights(p.graph.actors.size());
    for (const auto& a : p.graph.actors)
        weights[a.id] = cost.actorCycles(a.id);

    for (int w : cfg.widths) {
        SCOPED_TRACE("W=" + std::to_string(w));
        EngineConfig config(ExecEngine::Native);
        config.simd.laneWidth = w;

        Runner serialNative(p.graph, p.schedule, nullptr, config);
        serialNative.runInit();
        serialNative.runSteady(kIters);
        testutil::expectSameStream(vm.captured(),
                                   serialNative.captured());

        for (int threads : {1, 2, 4}) {
            SCOPED_TRACE(std::to_string(threads) + " threads");
            multicore::Partition part = multicore::partitionGreedy(
                p.graph, p.schedule, weights, threads);
            ParallelRunner::Options opt;
            opt.batchIterations = 4;  // 10 iters -> 3 batch barriers.
            ParallelRunner pr(p.graph, p.schedule, part, nullptr,
                              config, opt);
            pr.runInit();
            pr.runSteady(kIters);
            EXPECT_FALSE(pr.degradedToSerial());
            testutil::expectSameStream(vm.captured(), pr.captured());
            testutil::expectSameStream(serialNative.captured(),
                                       pr.captured());
        }
    }
}

class SuiteParallelNativeDiff
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SuiteParallelNativeDiff, MatchesSerialNativeAndVm)
{
    auto [benchIdx, cfgIdx] = GetParam();
    auto suite = benchmarks::standardSuite();
    ASSERT_LT(static_cast<std::size_t>(benchIdx), suite.size());
    const auto& bench = suite[benchIdx];
    const Config& cfg = kConfigs[cfgIdx];
    SCOPED_TRACE(bench.name + std::string(" / ") + cfg.name);
    expectParallelNativeMatchesUnder(bench.program, cfg);
}

// The macro configuration runs the full 12-benchmark suite at both
// widths; the scalar and SAGU configurations cover a 4-benchmark
// subset (indices 0-3) to keep host-compile time in check — every
// (benchmark, config, width, thread-count) tuple is its own cached
// shared object.
INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksMacro, SuiteParallelNativeDiff,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(0)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = benchmarks::standardSuite();
        std::string n = suite[std::get<0>(info.param)].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

INSTANTIATE_TEST_SUITE_P(
    SubsetScalarAndSagu, SuiteParallelNativeDiff,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Range(1, 3)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
        auto suite = benchmarks::standardSuite();
        std::string n = suite[std::get<0>(info.param)].name +
                        std::string("_") +
                        kConfigs[std::get<1>(info.param)].name;
        for (auto& ch : n) {
            if (ch == '-' || ch == '+')
                ch = '_';
        }
        return n;
    });

class RandomParallelNativeDiff : public ::testing::TestWithParam<int> {
};

TEST_P(RandomParallelNativeDiff, MatchesSerialNativeAndVm)
{
    std::uint64_t seed = 9400 + GetParam();
    SCOPED_TRACE("seed " + std::to_string(seed));
    expectParallelNativeMatchesUnder(benchmarks::randomProgram(seed),
                                     kConfigs[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomParallelNativeDiff,
                         ::testing::Range(0, 4));

// Stats surface: a healthy parallel native run reports
// engine="native", the build stats, and the per-partition wall-time
// section under parallel.native.
TEST(ParallelNativeStats, ReportsPartitionedSections)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    opts.machine = machine::coreI7();
    auto p = vectorizer::macroSimdize(benchmarks::makeFmRadio(), opts);

    machine::CostSink cost(machine::coreI7());
    Runner vm(p.graph, p.schedule, &cost,
              EngineConfig(ExecEngine::Bytecode));
    vm.runInit();
    vm.runSteady(4);
    std::vector<double> weights(p.graph.actors.size());
    for (const auto& a : p.graph.actors)
        weights[a.id] = cost.actorCycles(a.id);
    multicore::Partition part =
        multicore::partitionGreedy(p.graph, p.schedule, weights, 2);

    EngineConfig config(ExecEngine::Native);
    config.simd.laneWidth = 4;
    ParallelRunner pr(p.graph, p.schedule, part, nullptr, config);
    pr.runInit();
    pr.runSteady(kIters);

    ASSERT_NE(pr.nativeStats(), nullptr);
    EXPECT_EQ(pr.nativeStats()->abiVersion, 3);

    json::Value stats = pr.statsToJson();
    EXPECT_EQ(stats.find("engine")->asString(), "native");
    const json::Value* nat = stats.find("native");
    ASSERT_NE(nat, nullptr);
    EXPECT_EQ(nat->find("abiVersion")->asInt(), 3);
    EXPECT_FALSE(nat->find("compiler")->asString().empty());
    const json::Value* par = stats.find("parallel");
    ASSERT_NE(par, nullptr);
    EXPECT_EQ(par->find("threads")->asInt(), 2);
    EXPECT_FALSE(par->find("degradedToSerial")->asBool());
    const json::Value* pnat = par->find("native");
    ASSERT_NE(pnat, nullptr);
    EXPECT_EQ(pnat->find("partitions")->asInt(), 2);
    EXPECT_EQ(pnat->find("partitionWallMicros")->size(), 2u);
}

} // namespace
} // namespace macross::interp
