/**
 * @file
 * Unit tests for the per-thread signal guard around emitted code:
 * normal returns, crash capture for each guarded signal, guard
 * nesting, exception transparency, and multi-thread independence.
 *
 * The crashes here are raised synchronously with raise(): that
 * delivers the signal on the calling thread through the same
 * SA_SIGINFO handler a hardware fault would take, without the UB of
 * actually dereferencing garbage in a test binary.
 */
#include "native/signal_guard.h"

#include <gtest/gtest.h>

#include <csignal>
#include <stdexcept>
#include <thread>

namespace macross::native {
namespace {

TEST(SignalGuard, NormalReturnIsNotACrash)
{
    int ran = 0;
    auto crash = signal_guard::run([&] { ran = 1; });
    EXPECT_FALSE(crash.has_value());
    EXPECT_EQ(ran, 1);
}

TEST(SignalGuard, CatchesEachGuardedSignal)
{
    for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL}) {
        SCOPED_TRACE(sig);
        auto crash = signal_guard::run([sig] { raise(sig); });
        ASSERT_TRUE(crash.has_value());
        EXPECT_EQ(crash->signal, sig);
    }
    EXPECT_TRUE(signal_guard::handlersInstalled());
}

TEST(SignalGuard, ProcessStaysAliveAcrossRepeatedCrashes)
{
    for (int i = 0; i < 8; ++i) {
        auto crash = signal_guard::run([] { raise(SIGSEGV); });
        ASSERT_TRUE(crash.has_value());
    }
    // And the guard still passes healthy work through afterwards.
    auto ok = signal_guard::run([] {});
    EXPECT_FALSE(ok.has_value());
}

TEST(SignalGuard, GuardsNestInnermostWins)
{
    auto outer = signal_guard::run([] {
        // The inner guard absorbs its crash; the outer frame then
        // continues and returns normally.
        auto inner = signal_guard::run([] { raise(SIGFPE); });
        ASSERT_TRUE(inner.has_value());
        EXPECT_EQ(inner->signal, SIGFPE);
    });
    EXPECT_FALSE(outer.has_value());
}

TEST(SignalGuard, ExceptionsPropagateUnchanged)
{
    EXPECT_THROW(
        signal_guard::run([] { throw std::runtime_error("boom"); }),
        std::runtime_error);
    // The guard disarmed cleanly: a later crash is still caught.
    auto crash = signal_guard::run([] { raise(SIGSEGV); });
    EXPECT_TRUE(crash.has_value());
}

TEST(SignalGuard, EachThreadGuardsIndependently)
{
    // Concurrent guarded crashes on several threads must each be
    // caught by their own thread's context.
    std::vector<std::thread> threads;
    std::vector<int> caught(4, 0);
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t, &caught] {
            for (int i = 0; i < 4; ++i) {
                auto crash =
                    signal_guard::run([] { raise(SIGSEGV); });
                if (crash && crash->signal == SIGSEGV)
                    ++caught[t];
            }
        });
    }
    for (auto& th : threads)
        th.join();
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(caught[t], 4) << "thread " << t;
}

} // namespace
} // namespace macross::native
