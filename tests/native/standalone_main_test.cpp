/**
 * @file
 * End-to-end test for the emitted standalone main()'s argv handling:
 * the iteration-count argument is strtol-validated, junk and
 * non-positive counts exit nonzero with a usage message, and valid
 * counts (or no argument) run and print the elements/checksum line.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "benchmarks/suite.h"
#include "codegen/emit_cpp.h"
#include "native/compile_exec.h"
#include "native/native_engine.h"
#include "vectorizer/pipeline.h"

namespace macross::native {
namespace {

namespace fs = std::filesystem;

/** Emit + host-compile the running example once per process. */
const std::string& standaloneBinary()
{
    static std::string path = [] {
        std::string dir = ::testing::TempDir() +
                          "macross_standalone_main_" +
                          std::to_string(::getpid());
        fs::remove_all(dir);
        fs::create_directories(dir);
        vectorizer::CompiledProgram p = vectorizer::compileScalar(
            benchmarks::makeRunningExample());
        codegen::EmitOptions eo;
        eo.mode = codegen::EmitMode::Standalone;
        eo.steadyIterations = 4;
        std::string src = dir + "/prog.cpp";
        {
            std::ofstream out(src);
            out << codegen::emitCpp(p.graph, p.schedule, eo);
        }
        std::string bin = dir + "/prog";
        ExecResult r = runCommand(
            {detectHostCompiler(), "-O0", "-std=c++17", src, "-o",
             bin});
        if (!r.ok())
            return std::string();
        return bin;
    }();
    return path;
}

ExecResult runProg()
{
    return runCommand({standaloneBinary()});
}

ExecResult runProg(const std::string& arg)
{
    return runCommand({standaloneBinary(), arg});
}

TEST(StandaloneMain, NoArgumentUsesEmittedDefault)
{
    ASSERT_FALSE(standaloneBinary().empty())
        << "host compile of the emitted standalone program failed";
    ExecResult r = runProg();
    EXPECT_TRUE(r.ok()) << r.output;
    EXPECT_NE(r.output.find("elements"), std::string::npos);
    EXPECT_NE(r.output.find("checksum"), std::string::npos);
}

TEST(StandaloneMain, ValidCountRuns)
{
    ASSERT_FALSE(standaloneBinary().empty());
    ExecResult r = runProg("6");
    EXPECT_TRUE(r.ok()) << r.output;
    EXPECT_NE(r.output.find("elements"), std::string::npos);
}

TEST(StandaloneMain, RejectsJunkCounts)
{
    ASSERT_FALSE(standaloneBinary().empty());
    // The old emitted main() passed argv[1] through std::atoi:
    // "abc" silently became 0 iterations and "12xyz" became 12.
    // Every malformed count must now exit nonzero with usage text.
    for (const char* bad :
         {"abc", "12xyz", "", " ", "0", "-3", "99999999999999999999",
          "2147483648"}) {
        ExecResult r = runProg(bad);
        EXPECT_EQ(r.status, ExecStatus::NonZeroExit)
            << "argv[1]='" << bad << "' must be rejected";
        EXPECT_EQ(r.exitCode, 2) << "argv[1]='" << bad << "'";
        EXPECT_NE(r.output.find("usage"), std::string::npos)
            << "argv[1]='" << bad << "' output: " << r.output;
    }
}

} // namespace
} // namespace macross::native
