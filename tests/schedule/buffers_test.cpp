/**
 * @file
 * Buffer-bound tests: static bounds must dominate observed runtime
 * occupancy for every tape of every benchmark, scalar and SIMDized.
 */
#include "schedule/buffers.h"

#include <gtest/gtest.h>

#include "benchmarks/common.h"
#include "benchmarks/suite.h"
#include "interp/runner.h"
#include "vectorizer/pipeline.h"

namespace macross::schedule {
namespace {

void
expectBoundsHold(const vectorizer::CompiledProgram& p)
{
    auto bounds = computeBufferBounds(p.graph, p.schedule);
    interp::Runner r(p.graph, p.schedule);
    r.enableCapture(false);
    r.runInit();
    r.runSteady(5);
    for (const auto& b : bounds) {
        EXPECT_LE(r.tapeAt(b.tapeId).maxOccupancy(), b.bound)
            << "tape " << b.tapeId;
    }
}

TEST(Buffers, BoundsDominateRuntimeOccupancyScalar)
{
    for (const auto& b : benchmarks::standardSuite()) {
        SCOPED_TRACE(b.name);
        expectBoundsHold(vectorizer::compileScalar(b.program));
    }
}

TEST(Buffers, BoundsDominateRuntimeOccupancySimdized)
{
    vectorizer::SimdizeOptions opts;
    opts.forceSimdize = true;
    for (const char* name :
         {"FMRadio", "MatrixMultBlock", "FilterBank", "DCT"}) {
        SCOPED_TRACE(name);
        expectBoundsHold(vectorizer::macroSimdize(
            benchmarks::benchmarkByName(name), opts));
    }
}

TEST(Buffers, WarmupMatchesPeekResidue)
{
    // A peeking FIR needs (peek - pop) elements resident forever.
    using namespace graph;
    auto p = vectorizer::compileScalar(pipeline({
        filterStream(benchmarks::floatSource("src", 1)),
        filterStream(benchmarks::firFilter("fir", 16, 1, 0.1f)),
        filterStream(benchmarks::floatSink("snk", 1)),
    }));
    auto bounds = computeBufferBounds(p.graph, p.schedule);
    // Tape 0: src -> fir.
    EXPECT_EQ(bounds[0].warmup, 15);
    EXPECT_GT(totalBufferElements(bounds), 15);
}

TEST(Buffers, SteadyOccupancyIsPeriodic)
{
    // After any number of whole steady iterations the residue on
    // every tape returns to the warm-up value.
    auto p = vectorizer::compileScalar(benchmarks::makeFmRadio());
    auto bounds = computeBufferBounds(p.graph, p.schedule);
    interp::Runner r(p.graph, p.schedule);
    r.enableCapture(false);
    r.runInit();
    r.runSteady(3);
    for (const auto& b : bounds) {
        EXPECT_EQ(r.tapeAt(b.tapeId).available(), b.warmup)
            << "tape " << b.tapeId;
    }
}

} // namespace
} // namespace macross::schedule
