/**
 * @file
 * Latency tests: the paper's Section 3.3 claim that horizontal
 * SIMDization preserves latency while single-actor/vertical
 * SIMDization scale the steady state.
 */
#include "schedule/latency.h"

#include <gtest/gtest.h>

#include "benchmarks/suite.h"
#include "vectorizer/pipeline.h"

namespace macross::schedule {
namespace {

Latency
latencyOf(const graph::StreamPtr& program,
          const vectorizer::SimdizeOptions* opts)
{
    auto compiled = opts ? vectorizer::macroSimdize(program, *opts)
                         : vectorizer::compileScalar(program);
    return measureLatency(compiled.graph, compiled.schedule);
}

TEST(Latency, HorizontalPreservesSteadyBatch)
{
    // FilterBank is purely horizontal: the steady-state input batch
    // must not grow under SIMDization.
    auto program = benchmarks::makeFilterBank();
    Latency scalar = latencyOf(program, nullptr);

    vectorizer::SimdizeOptions horizOnly;
    horizOnly.forceSimdize = true;
    horizOnly.enableVertical = false;
    horizOnly.enableSingleActor = false;
    Latency horiz = latencyOf(program, &horizOnly);
    EXPECT_EQ(horiz.steadyInput, scalar.steadyInput);
}

TEST(Latency, SingleActorScalesSteadyBatch)
{
    // MatrixMultBlock's chain is SIMDized across consecutive firings:
    // the steady state grows by the SIMD width.
    auto program = benchmarks::makeMatrixMultBlock();
    Latency scalar = latencyOf(program, nullptr);

    vectorizer::SimdizeOptions full;
    full.forceSimdize = true;
    Latency simd = latencyOf(program, &full);
    EXPECT_EQ(simd.steadyInput, scalar.steadyInput * 4);
}

TEST(Latency, PeekingPipelineHasWarmup)
{
    auto program = benchmarks::makeFmRadio();
    Latency l = latencyOf(program, nullptr);
    EXPECT_GT(l.initInput, 0);
    EXPECT_GT(l.steadyInput, 0);
}

TEST(Latency, AllBenchmarksHaveExactlyOneSource)
{
    for (const auto& b : benchmarks::standardSuite()) {
        SCOPED_TRACE(b.name);
        auto compiled = vectorizer::compileScalar(b.program);
        EXPECT_NO_THROW(
            measureLatency(compiled.graph, compiled.schedule));
    }
}

} // namespace
} // namespace macross::schedule
