/**
 * @file
 * Unit tests for the balance-equation solver.
 */
#include "schedule/repetition.h"

#include <gtest/gtest.h>

#include "benchmarks/common.h"
#include "benchmarks/suite.h"
#include "support/diagnostics.h"

namespace macross::schedule {
namespace {

using namespace graph;
using benchmarks::floatSink;
using benchmarks::floatSource;

FilterDefPtr
rateActor(const std::string& name, int pop, int push)
{
    FilterBuilder f(name, ir::kFloat32, ir::kFloat32);
    f.rates(pop, pop, push);
    auto x = f.local("x", ir::kFloat32);
    auto i = f.local("i", ir::kInt32);
    f.work().assign(x, ir::floatImm(0.0f));
    f.work().forLoop(i, 0, pop, [&](ir::BlockBuilder& b) {
        b.assign(x, ir::varRef(x) + f.pop());
    });
    f.work().forLoop(i, 0, push, [&](ir::BlockBuilder& b) {
        b.push(ir::varRef(x));
    });
    return f.build();
}

TEST(Repetition, ChainRates)
{
    // src(push 8) -> a(2->3) -> b(3->4) -> sink(pop 1)
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 8)),
        filterStream(rateActor("a", 2, 3)),
        filterStream(rateActor("b", 3, 4)),
        filterStream(floatSink("snk", 1)),
    }));
    auto reps = repetitionVector(g);
    // Minimal: src 1, a 4, b 4, snk 16.
    EXPECT_EQ(reps[g.topoOrder()[0]], 1);
    std::int64_t total = 0;
    for (const auto& t : g.tapes) {
        total += 1;
        EXPECT_EQ(reps[t.src] * g.actor(t.src).pushRate(t.srcPort),
                  reps[t.dst] * g.actor(t.dst).popRate(t.dstPort));
    }
    EXPECT_EQ(total, 3);
}

TEST(Repetition, MinimalityViaGcd)
{
    // src(push 4) -> a(2->2) -> sink(pop 2): all rates share factors.
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 4)),
        filterStream(rateActor("a", 2, 2)),
        filterStream(floatSink("snk", 2)),
    }));
    auto reps = repetitionVector(g);
    std::int64_t mn = reps[0];
    for (auto r : reps)
        mn = std::min(mn, r);
    EXPECT_EQ(mn, 1);
}

TEST(Repetition, EveryBenchmarkIsRateConsistent)
{
    for (const auto& b : benchmarks::standardSuite()) {
        SCOPED_TRACE(b.name);
        auto g = flatten(b.program);
        auto reps = repetitionVector(g);
        for (const auto& t : g.tapes) {
            EXPECT_EQ(reps[t.src] * g.actor(t.src).pushRate(t.srcPort),
                      reps[t.dst] *
                          g.actor(t.dst).popRate(t.dstPort));
        }
    }
}

TEST(Repetition, RunningExampleMatchesPaperShape)
{
    auto g = flatten(benchmarks::makeRunningExample());
    auto reps = repetitionVector(g);
    // Find D and E by name: the paper's Figure 2a gives D rep 6 and
    // E rep 4 (before any SIMDization scaling).
    for (const auto& a : g.actors) {
        if (a.name == "D") {
            EXPECT_EQ(reps[a.id], 6);
        }
        if (a.name == "E") {
            EXPECT_EQ(reps[a.id], 4);
        }
    }
}

} // namespace
} // namespace macross::schedule
