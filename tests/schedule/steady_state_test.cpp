/**
 * @file
 * Unit tests for steady-state scheduling: init-phase firing counts for
 * peeking actors and Equation (1) repetition scaling.
 */
#include "schedule/steady_state.h"

#include <gtest/gtest.h>

#include "benchmarks/common.h"
#include "benchmarks/suite.h"
#include "schedule/scaling.h"

namespace macross::schedule {
namespace {

using namespace graph;
using benchmarks::firFilter;
using benchmarks::floatSink;
using benchmarks::floatSource;

TEST(SteadyState, PeekingActorGetsWarmup)
{
    // FIR peeks 16 but pops 1: the source must pre-fill 15 elements.
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 1)),
        filterStream(firFilter("fir", 16, 1, 0.1f)),
        filterStream(floatSink("snk", 1)),
    }));
    Schedule s = makeSchedule(g);
    // src is the first actor in topo order.
    int srcId = s.order.front();
    EXPECT_EQ(s.initFires[srcId], 15);
}

TEST(SteadyState, CascadedPeekersAccumulateWarmup)
{
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 1)),
        filterStream(firFilter("fir1", 8, 1, 0.1f)),
        filterStream(firFilter("fir2", 4, 1, 0.2f)),
        filterStream(floatSink("snk", 1)),
    }));
    Schedule s = makeSchedule(g);
    int srcId = s.order.front();
    // fir2 needs 3 resident, so fir1 must fire 3 times in init, which
    // needs 7 + 3 = 10 elements from the source.
    EXPECT_EQ(s.initFires[srcId], 10);
}

TEST(SteadyState, NonPeekingProgramNeedsNoWarmup)
{
    auto g = flatten(pipeline({
        filterStream(floatSource("src", 4)),
        filterStream(floatSink("snk", 2)),
    }));
    Schedule s = makeSchedule(g);
    for (auto f : s.initFires)
        EXPECT_EQ(f, 0);
}

TEST(Scaling, Equation1)
{
    // Paper Section 3.1: reps {6, 4} with SW 4 need scaling by 2.
    EXPECT_EQ(scalingFactor({6, 4}, 4), 2);
    EXPECT_EQ(scalingFactor({4, 8}, 4), 1);
    EXPECT_EQ(scalingFactor({3}, 4), 4);
    EXPECT_EQ(scalingFactor({1, 2, 3}, 4), 4);
    EXPECT_EQ(scalingFactor({}, 4), 1);
}

TEST(Scaling, ScaleRepsInPlace)
{
    std::vector<std::int64_t> reps{1, 2, 3};
    scaleReps(reps, 4);
    EXPECT_EQ(reps, (std::vector<std::int64_t>{4, 8, 12}));
}

TEST(SteadyState, AllBenchmarksScheduleAndRateCheck)
{
    auto programs = benchmarks::standardSuite();
    for (const auto& b : programs) {
        SCOPED_TRACE(b.name);
        auto g = flatten(b.program);
        Schedule s = makeSchedule(g);
        EXPECT_EQ(s.order.size(), g.actors.size());
        checkRateMatched(g, s);  // must not throw
    }
}

} // namespace
} // namespace macross::schedule
