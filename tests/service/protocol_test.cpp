/**
 * @file
 * Unit tests for the macrossd wire protocol: request round-trips,
 * structural validation, the checksum/lane-flattening contract, and
 * typed error construction.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "service/protocol.h"
#include "support/diagnostics.h"

namespace macross::service {
namespace {

TEST(Protocol, RunRequestRoundTrips)
{
    Request req;
    req.op = RequestOp::Run;
    req.id = "req-42";
    req.tenant = "alice";
    req.bench = "FMRadio";
    req.iters = 7;
    req.wantOutput = true;
    req.config.laneWidth = 8;
    req.config.sagu = true;
    req.injectFault = "native-crash";

    Request back = Request::fromJson(req.toJson());
    EXPECT_EQ(back.op, RequestOp::Run);
    EXPECT_EQ(back.id, "req-42");
    EXPECT_EQ(back.tenant, "alice");
    EXPECT_EQ(back.bench, "FMRadio");
    EXPECT_EQ(back.iters, 7);
    EXPECT_TRUE(back.wantOutput);
    EXPECT_EQ(back.config.key(), req.config.key());
    EXPECT_EQ(back.injectFault, "native-crash");
}

TEST(Protocol, MinimalRequestsDefaultSanely)
{
    Request r = Request::fromJson(json::parse("{\"op\":\"ping\"}"));
    EXPECT_EQ(r.op, RequestOp::Ping);
    EXPECT_TRUE(r.id.empty());

    r = Request::fromJson(
        json::parse("{\"op\":\"run\",\"bench\":\"DCT\"}"));
    EXPECT_EQ(r.op, RequestOp::Run);
    EXPECT_EQ(r.iters, 1);
    EXPECT_FALSE(r.wantOutput);
    EXPECT_EQ(r.config.key(), tuner::TuneConfig{}.key());
}

TEST(Protocol, StructurallyInvalidRequestsAreFatal)
{
    EXPECT_THROW(Request::fromJson(json::Value("not an object")),
                 FatalError);
    EXPECT_THROW(
        Request::fromJson(json::parse("{\"op\":\"explode\"}")),
        FatalError);
    EXPECT_THROW(Request::fromJson(json::parse(
                     "{\"op\":\"run\",\"bench\":1}")),
                 FatalError);
    EXPECT_THROW(Request::fromJson(json::parse(
                     "{\"op\":\"run\",\"bench\":\"DCT\","
                     "\"iters\":0}")),
                 FatalError);
    EXPECT_THROW(Request::fromJson(json::parse(
                     "{\"op\":\"run\",\"bench\":\"DCT\","
                     "\"iters\":-3}")),
                 FatalError);
    EXPECT_THROW(Request::fromJson(json::parse(
                     "{\"op\":\"run\",\"config\":[]}")),
                 FatalError);
}

TEST(Protocol, ChecksumMatchesEmittedMainConvention)
{
    // The emitted standalone main() sums raw 32-bit lane bits into a
    // u64; the daemon must report the same digest for the same
    // stream.
    std::vector<interp::Value> vals;
    vals.push_back(interp::Value::makeInt(3));
    vals.push_back(interp::Value::makeFloat(1.5f));
    std::uint64_t want =
        static_cast<std::uint32_t>(3) +
        static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(1.5f));
    EXPECT_EQ(checksumLanes(vals), want);
    // Skipping already-reported elements drops their contribution.
    EXPECT_EQ(checksumLanes(vals, 1),
              std::bit_cast<std::uint32_t>(1.5f));

    std::vector<std::uint32_t> lanes = flattenLanes(vals);
    ASSERT_EQ(lanes.size(), 2u);
    EXPECT_EQ(lanes[0], 3u);
    EXPECT_EQ(lanes[1], std::bit_cast<std::uint32_t>(1.5f));
    EXPECT_EQ(flattenLanes(vals, 1).size(), 1u);
}

TEST(Protocol, Hex64IsFixedWidthLowercase)
{
    EXPECT_EQ(hex64(0), "0000000000000000");
    EXPECT_EQ(hex64(0xdeadbeefULL), "00000000deadbeef");
    EXPECT_EQ(hex64(~0ULL), "ffffffffffffffff");
}

TEST(Protocol, MakeErrorCarriesTypedKind)
{
    json::Value e = makeError("id-1", kind::kOverloaded, "busy");
    EXPECT_EQ(e.find("op")->asString(), "error");
    EXPECT_EQ(e.find("id")->asString(), "id-1");
    EXPECT_FALSE(e.find("ok")->asBool());
    EXPECT_EQ(e.find("kind")->asString(), "overloaded");
    EXPECT_EQ(e.find("message")->asString(), "busy");
}

} // namespace
} // namespace macross::service
