/**
 * @file
 * Integration tests for macrossd: the daemon runs in-process on a
 * temp socket with a hermetic cache directory, real clients connect
 * over AF_UNIX, and every assertion is end-to-end through the wire
 * protocol.
 *
 * The load-bearing properties:
 *  - N concurrent tenants produce output bit-identical to a serial
 *    Runner over the same artifact (the multi-tenant contract);
 *  - N identical concurrent submissions coalesce into ONE host
 *    compile (single-flight, asserted via the stats counters);
 *  - a full admission queue is a typed "overloaded" response, and
 *    the daemon stays healthy afterwards (explicit backpressure);
 *  - a tenant crashing in emitted code gets a structured fault
 *    response while co-resident tenants complete unperturbed, and
 *    the crashed tenant can immediately submit again (containment).
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/suite.h"
#include "interp/runner.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "support/diagnostics.h"
#include "support/fault.h"
#include "tuner/tune_config.h"
#include "vectorizer/compile_service.h"

namespace macross::service {
namespace {

/** Unique socket + cache dir per fixture instantiation. */
std::string freshDir(const std::string& tag)
{
    static std::atomic<int> n{0};
    return ::testing::TempDir() + "macross_svc_" + tag + "_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(n.fetch_add(1));
}

DaemonOptions testOptions(const std::string& tag)
{
    DaemonOptions o;
    o.socketPath = freshDir(tag) + ".sock";
    o.native.cacheDir = freshDir(tag + "_cache");
    return o;
}

tuner::TuneConfig testConfig()
{
    tuner::TuneConfig c;
    c.laneWidth = 4;
    return c;
}

/** The serial oracle: one Runner over the same artifact and cache,
 *  returning the steady-state delta's raw lanes. */
std::vector<std::uint32_t>
serialLanes(const std::string& bench, const tuner::TuneConfig& cfg,
            int iters, const std::string& cache_dir)
{
    vectorizer::CompileService svc(
        benchmarks::benchmarkByName(bench));
    const vectorizer::CompiledProgram& p =
        svc.compile(cfg.simdizeOptions(), cfg.simd);
    interp::EngineConfig ec = cfg.engineConfig();
    ec.degrade = interp::DegradeMode::Off;
    ec.native.cacheDir = cache_dir;
    interp::Runner r(p.graph, p.schedule, nullptr, ec);
    r.runInit();
    std::size_t seen = r.captured().size();
    r.runSteady(iters);
    return flattenLanes(r.captured(), seen);
}

Request runRequest(const std::string& bench, int iters,
                   const std::string& tenant,
                   const std::string& id = "r")
{
    Request req;
    req.op = RequestOp::Run;
    req.id = id;
    req.bench = bench;
    req.iters = iters;
    req.tenant = tenant;
    req.wantOutput = true;
    req.config = testConfig();
    return req;
}

std::vector<std::uint32_t> lanesOf(const json::Value& resp)
{
    std::vector<std::uint32_t> out;
    const json::Value* arr = resp.find("output");
    if (!arr)
        return out;
    for (const json::Value& v : arr->items())
        out.push_back(static_cast<std::uint32_t>(v.asInt()));
    return out;
}

std::int64_t counter(const json::Value& stats, const char* name)
{
    const json::Value* c = stats.find("counters");
    if (!c)
        return -1;
    const json::Value* v = c->find(name);
    return v ? v->asInt() : -1;
}

TEST(Service, PingStatsAndBadRequests)
{
    Daemon daemon(testOptions("ping"));
    daemon.start();
    Client client(daemon.options().socketPath);

    json::Value pong = client.ping();
    EXPECT_EQ(pong.find("op")->asString(), "pong");
    EXPECT_TRUE(pong.find("ok")->asBool());
    EXPECT_EQ(pong.find("version")->asInt(), kProtocolVersion);

    // A non-object line is a typed bad-request, not a dead daemon.
    json::Value bad = client.call(json::Value("garbage"));
    EXPECT_EQ(bad.find("kind")->asString(), kind::kBadRequest);

    // Unknown benchmark.
    json::Value resp =
        client.call(runRequest("NoSuchBenchmark", 1, "t"));
    EXPECT_FALSE(resp.find("ok")->asBool());
    EXPECT_EQ(resp.find("kind")->asString(), kind::kBadRequest);

    // bench and source are mutually exclusive.
    Request both = runRequest("FMRadio", 1, "t");
    both.source = "float->float filter F { work push 1 pop 1 { "
                  "push(pop()); } }";
    resp = client.call(both);
    EXPECT_EQ(resp.find("kind")->asString(), kind::kBadRequest);

    // The daemon runs the serial native engine only.
    Request threads = runRequest("FMRadio", 1, "t");
    threads.config.threads = 2;
    resp = client.call(threads);
    EXPECT_EQ(resp.find("kind")->asString(), kind::kBadRequest);

    // Fault injection is rejected unless explicitly allowed.
    Request inject = runRequest("FMRadio", 1, "t");
    inject.injectFault = "native-crash";
    resp = client.call(inject);
    EXPECT_EQ(resp.find("kind")->asString(), kind::kBadRequest);

    json::Value stats = client.stats();
    EXPECT_GE(counter(stats, "badRequests"), 4);
    EXPECT_EQ(counter(stats, "runsCompleted"), 0);

    daemon.requestShutdown();
    daemon.wait();
}

TEST(Service, ConcurrentTenantsBitIdenticalWithSerialRunner)
{
    DaemonOptions opts = testOptions("tenants");
    opts.workers = 4;
    std::string cacheDir = opts.native.cacheDir;
    Daemon daemon(std::move(opts));
    daemon.start();

    const std::vector<std::string> benches = {
        "FMRadio", "BeamFormer", "FilterBank", "DCT"};
    const int itersPerRequest = 3;
    const int requestsPerTenant = 2;

    // 4 tenants, each on its own connection + thread, each running
    // its own benchmark twice; the runner persists between requests,
    // so the two deltas concatenated must equal one serial run of
    // 2 * iters.
    std::vector<std::vector<std::uint32_t>> got(benches.size());
    std::vector<std::string> errors(benches.size());
    std::vector<std::thread> tenants;
    for (std::size_t i = 0; i < benches.size(); ++i) {
        tenants.emplace_back([&, i] {
            try {
                Client c(daemon.options().socketPath);
                for (int r = 0; r < requestsPerTenant; ++r) {
                    json::Value resp = c.call(runRequest(
                        benches[i], itersPerRequest,
                        "tenant-" + benches[i],
                        benches[i] + "-" + std::to_string(r)));
                    if (!resp.find("ok")->asBool()) {
                        errors[i] = resp.dump();
                        return;
                    }
                    std::vector<std::uint32_t> lanes =
                        lanesOf(resp);
                    got[i].insert(got[i].end(), lanes.begin(),
                                  lanes.end());
                }
            } catch (const std::exception& e) {
                errors[i] = e.what();
            }
        });
    }
    for (std::thread& t : tenants)
        t.join();

    for (std::size_t i = 0; i < benches.size(); ++i) {
        ASSERT_TRUE(errors[i].empty())
            << benches[i] << ": " << errors[i];
        std::vector<std::uint32_t> want = serialLanes(
            benches[i], testConfig(),
            itersPerRequest * requestsPerTenant, cacheDir);
        EXPECT_EQ(got[i], want)
            << benches[i]
            << ": daemon output is not bit-identical to the serial "
               "Runner";
    }

    Client c(daemon.options().socketPath);
    json::Value stats = c.stats();
    EXPECT_EQ(counter(stats, "runsCompleted"),
              static_cast<std::int64_t>(benches.size()) *
                  requestsPerTenant);
    EXPECT_EQ(counter(stats, "faults"), 0);

    daemon.requestShutdown();
    daemon.wait();
}

TEST(Service, CoalescesIdenticalConcurrentCompiles)
{
    DaemonOptions opts = testOptions("coalesce");
    opts.workers = 6;
    opts.compileQueueCap = 8;
    opts.admitBatch = 1;  // One job per worker: maximal concurrency.
    Daemon daemon(std::move(opts));
    daemon.start();

    // Six tenants submit the SAME (program, config) artifact at
    // once, before anything is warm. Single-flight must collapse
    // them into exactly one host compile.
    const int n = 6;
    std::vector<std::string> checksums(n);
    std::vector<std::string> errors(n);
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            try {
                Client c(daemon.options().socketPath);
                json::Value resp = c.call(
                    runRequest("FMRadio", 2,
                               "tenant-" + std::to_string(i)));
                if (!resp.find("ok")->asBool())
                    errors[i] = resp.dump();
                else
                    checksums[i] =
                        resp.find("checksum")->asString();
            } catch (const std::exception& e) {
                errors[i] = e.what();
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    for (int i = 0; i < n; ++i)
        ASSERT_TRUE(errors[i].empty()) << errors[i];
    for (int i = 1; i < n; ++i)
        EXPECT_EQ(checksums[i], checksums[0]);

    Client c(daemon.options().socketPath);
    json::Value stats = c.stats();
    EXPECT_EQ(counter(stats, "compiles"), 1)
        << "N identical concurrent submissions must pay exactly one "
           "host compile";
    EXPECT_EQ(counter(stats, "cacheHits"), n - 1);
    EXPECT_EQ(counter(stats, "runsCompleted"), n);

    daemon.requestShutdown();
    daemon.wait();
}

TEST(Service, FullQueueIsTypedOverloadedAndDaemonRecovers)
{
    DaemonOptions opts = testOptions("backpressure");
    opts.workers = 1;
    opts.runQueueCap = 1;
    opts.admitBatch = 1;
    Daemon daemon(std::move(opts));
    daemon.start();

    // Warm the artifact so the burst below takes the run queue.
    {
        Client c(daemon.options().socketPath);
        json::Value resp = c.call(runRequest("FMRadio", 1, "warm"));
        ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
    }

    // Stall the single worker (in-process chaos hook), then burst 8
    // requests: capacity 1 means most must be refused with a typed
    // "overloaded" — explicit backpressure, not unbounded queueing.
    support::FaultInjector::instance().arm(
        "service.worker.job",
        [](std::int64_t*) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(300));
        });
    const int n = 8;
    std::atomic<int> succeeded{0};
    std::atomic<int> overloaded{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
        threads.emplace_back([&, i] {
            Client c(daemon.options().socketPath);
            json::Value resp = c.call(runRequest(
                "FMRadio", 1, "burst-" + std::to_string(i)));
            if (resp.find("ok")->asBool()) {
                succeeded.fetch_add(1);
            } else if (resp.find("kind")->asString() ==
                       kind::kOverloaded) {
                overloaded.fetch_add(1);
            }
        });
    }
    for (std::thread& t : threads)
        t.join();
    support::FaultInjector::instance().reset();

    EXPECT_EQ(succeeded.load() + overloaded.load(), n)
        << "every request must get a typed answer";
    EXPECT_GE(overloaded.load(), 1);
    EXPECT_GE(succeeded.load(), 1);

    // The daemon is healthy after shedding load.
    Client c(daemon.options().socketPath);
    json::Value resp = c.call(runRequest("FMRadio", 1, "after"));
    EXPECT_TRUE(resp.find("ok")->asBool()) << resp.dump();
    json::Value stats = c.stats();
    EXPECT_GE(counter(stats, "overloaded"), 1);

    daemon.requestShutdown();
    daemon.wait();
}

TEST(Service, CrashingTenantIsContainedAndCanRetry)
{
    DaemonOptions opts = testOptions("crash");
    opts.workers = 4;
    opts.admitBatch = 1;
    opts.allowFaultInjection = true;
    std::string cacheDir = opts.native.cacheDir;
    Daemon daemon(std::move(opts));
    daemon.start();

    // Warm the artifact first so the co-residents take the fast
    // path and the crash hits a warm cache entry (the interesting
    // case: quarantine + recompile, not a cold miss).
    {
        Client c(daemon.options().socketPath);
        json::Value resp = c.call(runRequest("FMRadio", 1, "warm"));
        ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
    }
    std::vector<std::uint32_t> want =
        serialLanes("FMRadio", testConfig(), 4, cacheDir);

    // Tenant A crashes in emitted code; B, C, D run concurrently
    // and must complete with bit-identical output.
    json::Value crashResp;
    std::vector<std::vector<std::uint32_t>> good(3);
    std::vector<std::string> errors(3);
    std::thread crasher([&] {
        Client c(daemon.options().socketPath);
        Request req = runRequest("FMRadio", 4, "tenant-A", "crash");
        req.injectFault = "native-crash";
        crashResp = c.call(req);
    });
    std::vector<std::thread> residents;
    for (int i = 0; i < 3; ++i) {
        residents.emplace_back([&, i] {
            try {
                Client c(daemon.options().socketPath);
                json::Value resp = c.call(runRequest(
                    "FMRadio", 4, "tenant-" + std::to_string(i)));
                if (!resp.find("ok")->asBool())
                    errors[i] = resp.dump();
                else
                    good[i] = lanesOf(resp);
            } catch (const std::exception& e) {
                errors[i] = e.what();
            }
        });
    }
    crasher.join();
    for (std::thread& t : residents)
        t.join();

    // The crash is a structured per-request fault, not a dead
    // daemon.
    ASSERT_FALSE(crashResp.isNull());
    EXPECT_FALSE(crashResp.find("ok")->asBool());
    EXPECT_EQ(crashResp.find("kind")->asString(), kind::kFault);
    const json::Value* fault = crashResp.find("fault");
    ASSERT_NE(fault, nullptr);
    EXPECT_EQ(fault->find("kind")->asString(), "crash");

    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(errors[i].empty()) << errors[i];
        EXPECT_EQ(good[i], want)
            << "co-resident tenant " << i
            << " was perturbed by tenant-A's crash";
    }

    // Tenant A retries without the fault and succeeds: its context
    // was discarded, the quarantined entry recompiles fresh.
    Client c(daemon.options().socketPath);
    json::Value retry =
        c.call(runRequest("FMRadio", 4, "tenant-A", "retry"));
    ASSERT_TRUE(retry.find("ok")->asBool()) << retry.dump();
    EXPECT_EQ(lanesOf(retry), want);

    json::Value stats = c.stats();
    EXPECT_EQ(counter(stats, "faults"), 1);

    daemon.requestShutdown();
    daemon.wait();
}

TEST(Service, PersistentTenantContinuesSteadyState)
{
    DaemonOptions opts = testOptions("persist");
    std::string cacheDir = opts.native.cacheDir;
    Daemon daemon(std::move(opts));
    daemon.start();

    Client c(daemon.options().socketPath);
    std::vector<std::uint32_t> all;
    for (int r = 0; r < 3; ++r) {
        json::Value resp = c.call(
            runRequest("RunningExample", 2, "alice",
                       "run-" + std::to_string(r)));
        ASSERT_TRUE(resp.find("ok")->asBool()) << resp.dump();
        EXPECT_EQ(resp.find("tenantRuns")->asInt(), r + 1);
        std::vector<std::uint32_t> lanes = lanesOf(resp);
        all.insert(all.end(), lanes.begin(), lanes.end());
    }
    EXPECT_EQ(all, serialLanes("RunningExample", testConfig(), 6,
                               cacheDir))
        << "three daemon requests must continue one steady state";

    daemon.requestShutdown();
    daemon.wait();
}

TEST(Service, ShutdownRequestDrainsCleanly)
{
    DaemonOptions opts = testOptions("shutdown");
    std::string socket = opts.socketPath;
    Daemon daemon(std::move(opts));
    daemon.start();

    Client c(socket);
    ASSERT_TRUE(c.call(runRequest("RunningExample", 1, "t"))
                    .find("ok")
                    ->asBool());
    json::Value ack = c.shutdown();
    EXPECT_TRUE(ack.find("ok")->asBool());
    daemon.wait();

    // Socket file is gone; a fresh connect is refused.
    EXPECT_THROW(Client reject(socket), FatalError);
}

} // namespace
} // namespace macross::service
