/**
 * @file
 * Unit tests for the fatal/panic diagnostics helpers.
 */
#include "support/diagnostics.h"

#include <gtest/gtest.h>

namespace macross {
namespace {

TEST(Diagnostics, FatalThrowsWithFormattedMessage)
{
    try {
        fatal("bad rate ", 42, " on actor ", "foo");
        FAIL() << "fatal returned";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "fatal: bad rate 42 on actor foo");
    }
}

TEST(Diagnostics, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Diagnostics, ConditionalHelpersFireOnlyWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Diagnostics, FatalIsNotPanic)
{
    // The two categories are distinct so tests and callers can tell
    // user errors from library bugs apart.
    EXPECT_THROW(
        {
            try {
                fatal("x");
            } catch (const PanicError&) {
                FAIL() << "fatal threw PanicError";
            } catch (const FatalError&) {
                throw;
            }
        },
        FatalError);
}

} // namespace
} // namespace macross
