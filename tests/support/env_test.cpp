/**
 * @file
 * Tests for validated env parsing (envInt64) and private-directory
 * hygiene (ensurePrivateDir): the hardening behind every numeric
 * MACROSS_* override and every default per-user cache path.
 */
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "support/env.h"

namespace macross::support {
namespace {

namespace fs = std::filesystem;

class EnvGuard {
  public:
    explicit EnvGuard(const char* name) : name_(name) {}
    ~EnvGuard() { ::unsetenv(name_); }
    void set(const char* v) { ::setenv(name_, v, 1); }

  private:
    const char* name_;
};

TEST(EnvInt64, UnsetAndEmptyAreNullopt)
{
    EnvGuard g("MACROSS_TEST_ENV_INT");
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    g.set("");
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
}

TEST(EnvInt64, ParsesValidValues)
{
    EnvGuard g("MACROSS_TEST_ENV_INT");
    g.set("12345");
    EXPECT_EQ(envInt64("MACROSS_TEST_ENV_INT").value_or(-1), 12345);
    g.set("1");
    EXPECT_EQ(envInt64("MACROSS_TEST_ENV_INT").value_or(-1), 1);
    g.set("-5");
    EXPECT_EQ(
        envInt64("MACROSS_TEST_ENV_INT", -10).value_or(-99), -5);
}

TEST(EnvInt64, RejectsGarbageTrailingJunkAndOverflow)
{
    EnvGuard g("MACROSS_TEST_ENV_INT");
    // The old bare-strtoll parse turned "abc" into 0 and "123abc"
    // into 123 silently; both must now be rejected (caller default).
    g.set("abc");
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    g.set("123abc");
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    g.set("12.5");
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    g.set("99999999999999999999999999");  // > INT64_MAX
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    g.set(" 42");  // Leading whitespace is strtoll-legal; allow it.
    EXPECT_EQ(envInt64("MACROSS_TEST_ENV_INT").value_or(-1), 42);
}

TEST(EnvInt64, EnforcesRange)
{
    EnvGuard g("MACROSS_TEST_ENV_INT");
    g.set("0");
    // Default min is 1: non-positive rejected.
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    g.set("-1");
    EXPECT_FALSE(envInt64("MACROSS_TEST_ENV_INT").has_value());
    // Widened range admits the same value.
    g.set("-1");
    EXPECT_EQ(envInt64("MACROSS_TEST_ENV_INT", -1).value_or(-99),
              -1);
    g.set("1000");
    EXPECT_FALSE(
        envInt64("MACROSS_TEST_ENV_INT", 1, 999).has_value());
}

std::string freshPath(const std::string& tag)
{
    std::string p = ::testing::TempDir() + "macross_envdir_" + tag +
                    "_" + std::to_string(::getpid());
    fs::remove_all(p);
    return p;
}

TEST(EnsurePrivateDir, CreatesWithMode0700)
{
    std::string dir = freshPath("create");
    std::string got = ensurePrivateDir(dir, "test cache");
    EXPECT_EQ(got, dir);
    struct stat st{};
    ASSERT_EQ(::lstat(dir.c_str(), &st), 0);
    ASSERT_TRUE(S_ISDIR(st.st_mode));
    EXPECT_EQ(st.st_mode & 0777, 0700u);
    EXPECT_EQ(st.st_uid, ::geteuid());
    fs::remove_all(dir);
}

TEST(EnsurePrivateDir, TightensLoosePermissions)
{
    std::string dir = freshPath("tighten");
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    ::chmod(dir.c_str(), 0777);  // mkdir is umask-filtered; force it.
    std::string got = ensurePrivateDir(dir, "test cache");
    EXPECT_EQ(got, dir);
    struct stat st{};
    ASSERT_EQ(::lstat(dir.c_str(), &st), 0);
    EXPECT_EQ(st.st_mode & 0077, 0u)
        << "group/other bits must be stripped";
    fs::remove_all(dir);
}

TEST(EnsurePrivateDir, RefusesSymlinkAndFallsBack)
{
    // The classic /tmp race: another user plants a symlink at the
    // predictable path. The hardened resolver must not follow it.
    std::string target = freshPath("symlink_target");
    ASSERT_EQ(::mkdir(target.c_str(), 0700), 0);
    std::string link = freshPath("symlink");
    ASSERT_EQ(::symlink(target.c_str(), link.c_str()), 0);

    std::string got = ensurePrivateDir(link, "test cache");
    EXPECT_NE(got, link) << "symlinked path must not be used";
    struct stat st{};
    ASSERT_EQ(::lstat(got.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    EXPECT_EQ(st.st_mode & 0777, 0700u);

    fs::remove_all(got);
    ::unlink(link.c_str());
    fs::remove_all(target);
}

TEST(EnsurePrivateDir, RefusesPlainFileAndFallsBack)
{
    std::string path = freshPath("file");
    {
        FILE* f = ::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        ::fclose(f);
    }
    std::string got = ensurePrivateDir(path, "test cache");
    EXPECT_NE(got, path);
    struct stat st{};
    ASSERT_EQ(::lstat(got.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));
    fs::remove_all(got);
    ::unlink(path.c_str());
}

} // namespace
} // namespace macross::support
