/**
 * @file
 * Unit tests for the fault-injection registry: arm/fire/disarm/reset
 * semantics, bounded fire counts, and value mutation through the hook.
 */
#include "support/fault.h"

#include <gtest/gtest.h>

namespace macross::support {
namespace {

class FaultInjectorTest : public ::testing::Test {
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

TEST_F(FaultInjectorTest, DisarmedSiteNeverFires)
{
    std::int64_t v = 7;
    EXPECT_FALSE(FaultInjector::fire("test.site", &v));
    EXPECT_EQ(v, 7);
    EXPECT_EQ(FaultInjector::instance().fireCount("test.site"), 0);
}

TEST_F(FaultInjectorTest, ArmedSiteMutatesThePayload)
{
    FaultInjector::instance().arm(
        "test.site", [](std::int64_t* v) { *v += 100; });
    std::int64_t v = 7;
    EXPECT_TRUE(FaultInjector::fire("test.site", &v));
    EXPECT_EQ(v, 107);
    EXPECT_EQ(FaultInjector::instance().fireCount("test.site"), 1);
    // Other sites stay disarmed.
    EXPECT_FALSE(FaultInjector::fire("test.other", &v));
}

TEST_F(FaultInjectorTest, MaxFiresBoundsTheTriggerCount)
{
    int hits = 0;
    FaultInjector::instance().arm(
        "test.site", [&hits](std::int64_t*) { ++hits; },
        /*max_fires=*/2);
    for (int i = 0; i < 5; ++i)
        FaultInjector::fire("test.site");
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(FaultInjector::instance().fireCount("test.site"), 2);
}

TEST_F(FaultInjectorTest, DisarmStopsFutureFiresButKeepsTheCount)
{
    FaultInjector::instance().arm("test.site", [](std::int64_t*) {});
    FaultInjector::fire("test.site");
    FaultInjector::instance().disarm("test.site");
    EXPECT_FALSE(FaultInjector::fire("test.site"));
    EXPECT_EQ(FaultInjector::instance().fireCount("test.site"), 1);
}

TEST_F(FaultInjectorTest, RearmingReplacesTheAction)
{
    std::int64_t v = 0;
    FaultInjector::instance().arm("test.site",
                                  [](std::int64_t* p) { *p = 1; });
    FaultInjector::instance().arm("test.site",
                                  [](std::int64_t* p) { *p = 2; });
    FaultInjector::fire("test.site", &v);
    EXPECT_EQ(v, 2);
}

TEST_F(FaultInjectorTest, ResetClearsActionsAndCounts)
{
    FaultInjector::instance().arm("test.site", [](std::int64_t*) {});
    FaultInjector::fire("test.site");
    FaultInjector::instance().reset();
    EXPECT_EQ(FaultInjector::instance().fireCount("test.site"), 0);
    EXPECT_FALSE(FaultInjector::fire("test.site"));
}

TEST_F(FaultInjectorTest, SkipFiresDelaysTheFirstTrigger)
{
    int hits = 0;
    FaultInjector::instance().arm(
        "test.site", [&hits](std::int64_t*) { ++hits; },
        /*max_fires=*/1, /*skip_fires=*/2);
    // The first two probes pass through untriggered, the third
    // fires, and the max_fires budget then exhausts the site.
    EXPECT_FALSE(FaultInjector::fire("test.site"));
    EXPECT_FALSE(FaultInjector::fire("test.site"));
    EXPECT_TRUE(FaultInjector::fire("test.site"));
    EXPECT_FALSE(FaultInjector::fire("test.site"));
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(FaultInjector::instance().fireCount("test.site"), 1);
}

TEST_F(FaultInjectorTest, NullPayloadSitesAreAllowed)
{
    bool saw_null = false;
    FaultInjector::instance().arm(
        "test.site",
        [&saw_null](std::int64_t* v) { saw_null = (v == nullptr); });
    EXPECT_TRUE(FaultInjector::fire("test.site"));
    EXPECT_TRUE(saw_null);
}

} // namespace
} // namespace macross::support
