/**
 * @file
 * Tests for the JSON document model: construction, serialization,
 * parsing, and the round-trip guarantee parse(dump(v)) == v.
 */
#include "support/json.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross::json {
namespace {

Value
sampleDocument()
{
    Value root = Value::object();
    root["name"] = "FMRadio";
    root["accepted"] = true;
    root["lanes"] = 4;
    root["cycles"] = 1234.5;
    root["note"] = Value();
    Value arr = Value::array();
    arr.push(1);
    arr.push(-2);
    arr.push(0.25);
    arr.push("three");
    arr.push(false);
    root["mixed"] = std::move(arr);
    Value nested = Value::object();
    nested["quote\"and\\slash"] = "line\nbreak\ttab";
    nested["empty_obj"] = Value::object();
    nested["empty_arr"] = Value::array();
    root["nested"] = std::move(nested);
    return root;
}

TEST(Json, ScalarAccessors)
{
    EXPECT_TRUE(Value().isNull());
    EXPECT_EQ(Value(true).asBool(), true);
    EXPECT_EQ(Value(42).asInt(), 42);
    EXPECT_DOUBLE_EQ(Value(1.5).asDouble(), 1.5);
    EXPECT_DOUBLE_EQ(Value(7).asDouble(), 7.0);  // Int promotes.
    EXPECT_EQ(Value("hi").asString(), "hi");
    EXPECT_THROW(Value(1).asString(), PanicError);
    EXPECT_THROW(Value("x").asInt(), PanicError);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    Value v = Value::object();
    v["zebra"] = 1;
    v["alpha"] = 2;
    v["mid"] = 3;
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "zebra");
    EXPECT_EQ(v.members()[1].first, "alpha");
    EXPECT_EQ(v.members()[2].first, "mid");
    EXPECT_EQ(v.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, DumpEscapesStrings)
{
    Value v = Value::object();
    v["k"] = "a\"b\\c\nd\x01";
    EXPECT_EQ(v.dump(), "{\"k\":\"a\\\"b\\\\c\\nd\\u0001\"}");
}

TEST(Json, ParseBasics)
{
    Value v = parse(R"({"a": [1, 2.5, "x", null, true], "b": {}})");
    ASSERT_TRUE(v.contains("a"));
    EXPECT_EQ(v.find("a")->size(), 5u);
    EXPECT_EQ(v.find("a")->at(0).asInt(), 1);
    EXPECT_DOUBLE_EQ(v.find("a")->at(1).asDouble(), 2.5);
    EXPECT_EQ(v.find("a")->at(2).asString(), "x");
    EXPECT_TRUE(v.find("a")->at(3).isNull());
    EXPECT_TRUE(v.find("a")->at(4).asBool());
    EXPECT_EQ(v.find("b")->size(), 0u);
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_THROW(parse(""), FatalError);
    EXPECT_THROW(parse("{"), FatalError);
    EXPECT_THROW(parse("[1,]2"), FatalError);
    EXPECT_THROW(parse("{\"a\" 1}"), FatalError);
    EXPECT_THROW(parse("tru"), FatalError);
    EXPECT_THROW(parse("\"unterminated"), FatalError);
    EXPECT_THROW(parse("{} trailing"), FatalError);
}

TEST(Json, RoundTripCompact)
{
    Value doc = sampleDocument();
    EXPECT_EQ(parse(doc.dump()), doc);
}

TEST(Json, RoundTripPretty)
{
    Value doc = sampleDocument();
    EXPECT_EQ(parse(doc.dump(2)), doc);
    EXPECT_EQ(parse(doc.dump(4)), doc);
}

TEST(Json, RoundTripPreservesDoublesExactly)
{
    // Shortest-representation printing (std::to_chars) must restore
    // bit-identical doubles through the parser.
    for (double d : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23,
                     -123.456789012345678, 4.9406564584124654e-324}) {
        Value v = Value::array();
        v.push(d);
        Value back = parse(v.dump());
        EXPECT_DOUBLE_EQ(back.at(0).asDouble(), d);
    }
}

TEST(Json, IntAndDoubleCompareNumerically)
{
    // to_chars prints 5.0 as "5", which re-parses as Int; equality
    // must bridge the kinds for round-trips to hold.
    Value a(5);
    Value b(5.0);
    EXPECT_EQ(a, b);
    Value arr = Value::array();
    arr.push(5.0);
    EXPECT_EQ(parse(arr.dump()), arr);
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    Value v = parse(R"(["\u0041\u00e9\u20ac"])");
    EXPECT_EQ(v.at(0).asString(), "A\xC3\xA9\xE2\x82\xAC");
}

} // namespace
} // namespace macross::json
