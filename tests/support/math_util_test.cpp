/**
 * @file
 * Unit tests for integer-math helpers and Rational.
 */
#include "support/math_util.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"

namespace macross {
namespace {

TEST(MathUtil, GcdLcmBasics)
{
    EXPECT_EQ(gcd64(12, 18), 6);
    EXPECT_EQ(gcd64(0, 7), 7);
    EXPECT_EQ(gcd64(7, 0), 7);
    EXPECT_EQ(lcm64(4, 6), 12);
    EXPECT_EQ(lcm64(0, 6), 0);
    EXPECT_EQ(lcm64(5, 5), 5);
}

TEST(MathUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(-4));
    EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(MathUtil, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0);
    EXPECT_EQ(log2Exact(8), 3);
    EXPECT_EQ(log2Exact(4096), 12);
    EXPECT_THROW(log2Exact(6), PanicError);
}

TEST(MathUtil, CeilDivAndRoundUp)
{
    EXPECT_EQ(ceilDiv(0, 3), 0);
    EXPECT_EQ(ceilDiv(1, 3), 1);
    EXPECT_EQ(ceilDiv(3, 3), 1);
    EXPECT_EQ(ceilDiv(4, 3), 2);
    EXPECT_EQ(roundUp(5, 4), 8);
    EXPECT_EQ(roundUp(8, 4), 8);
}

TEST(Rational, NormalizesToLowestTerms)
{
    Rational r(6, 8);
    EXPECT_EQ(r.num(), 3);
    EXPECT_EQ(r.den(), 4);
    Rational neg(3, -6);
    EXPECT_EQ(neg.num(), -1);
    EXPECT_EQ(neg.den(), 2);
}

TEST(Rational, Arithmetic)
{
    Rational a(1, 2);
    Rational b(2, 3);
    EXPECT_EQ(a * b, Rational(1, 3));
    EXPECT_EQ(a / b, Rational(3, 4));
    EXPECT_EQ(Rational(4, 2), Rational::fromInt(2));
}

TEST(Rational, DivisionByZeroPanics)
{
    EXPECT_THROW(Rational(1, 2) / Rational(0, 5), PanicError);
    EXPECT_THROW(Rational(1, 0), PanicError);
}

} // namespace
} // namespace macross
