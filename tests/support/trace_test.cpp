/**
 * @file
 * Tests for the Trace collector: counters, scoped timers, events,
 * enable gating, and JSON serialization.
 */
#include "support/trace.h"

#include <gtest/gtest.h>

namespace macross::support {
namespace {

TEST(Trace, CountersAccumulate)
{
    Trace t;
    t.count("a");
    t.count("a", 4);
    t.count("b", -2);
    EXPECT_EQ(t.counters().at("a"), 5);
    EXPECT_EQ(t.counters().at("b"), -2);
}

TEST(Trace, ScopedTimersAggregateByName)
{
    Trace t;
    for (int i = 0; i < 3; ++i) {
        Trace::Scope s(&t, "pass");
    }
    ASSERT_TRUE(t.timers().count("pass"));
    EXPECT_EQ(t.timers().at("pass").calls, 3);
    EXPECT_GE(t.timers().at("pass").totalMs, 0.0);
}

TEST(Trace, NullScopeIsInert)
{
    // The RAII scope must be safe with no trace attached (the
    // convention the pipeline uses when tracing is off).
    Trace::Scope s(nullptr, "ignored");
}

TEST(Trace, DisabledTraceRecordsNothing)
{
    Trace t;
    t.enable(false);
    t.count("c");
    t.event("cat", "ev");
    {
        Trace::Scope s(&t, "pass");
    }
    EXPECT_TRUE(t.counters().empty());
    EXPECT_TRUE(t.events().empty());
    EXPECT_TRUE(t.timers().empty());
}

TEST(Trace, EventsKeepOrderAndPayload)
{
    Trace t;
    json::Value payload = json::Value::object();
    payload["n"] = 7;
    t.event("compile", "start");
    t.event("compile", "done", std::move(payload));
    ASSERT_EQ(t.events().size(), 2u);
    EXPECT_EQ(t.events()[0].name, "start");
    EXPECT_EQ(t.events()[1].name, "done");
    EXPECT_EQ(t.events()[1].payload.find("n")->asInt(), 7);
    EXPECT_GE(t.events()[1].atMs, t.events()[0].atMs);
}

TEST(Trace, ToJsonRoundTrips)
{
    Trace t;
    t.count("decisions", 12);
    t.event("vectorizer", "macroSimdize");
    {
        Trace::Scope s(&t, "vectorizer.prepass");
    }
    json::Value j = t.toJson();
    EXPECT_EQ(j.find("counters")->find("decisions")->asInt(), 12);
    EXPECT_EQ(j.find("events")->size(), 1u);
    EXPECT_EQ(
        j.find("timers")->find("vectorizer.prepass")->find("calls")
            ->asInt(),
        1);
    EXPECT_EQ(json::parse(j.dump(2)), j);
}

TEST(Trace, ClearDropsEverything)
{
    Trace t;
    t.count("x");
    t.event("a", "b");
    t.clear();
    EXPECT_TRUE(t.counters().empty());
    EXPECT_TRUE(t.events().empty());
    EXPECT_TRUE(t.enabled());
}

} // namespace
} // namespace macross::support
