/**
 * @file
 * Unit tests for the ULP-distance helper that backs the native
 * engine's ULP-tolerance comparison mode (support/ulp.h). The helper
 * is the arbiter of "close enough" for every allowUlpDivergence
 * differential run, so its corner cases — sign of zero, NaN,
 * denormals, the subnormal/normal boundary — get pinned here.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/ulp.h"

namespace macross::support {
namespace {

float
nextAfterF(float x, float toward)
{
    return std::nextafterf(x, toward);
}

TEST(Ulp, ExactValuesAreZeroApart)
{
    EXPECT_EQ(ulpDistance(1.0f, 1.0f), 0);
    EXPECT_EQ(ulpDistance(0.0f, 0.0f), 0);
    EXPECT_EQ(ulpDistance(-3.5f, -3.5f), 0);
    EXPECT_EQ(ulpDistance(1e30f, 1e30f), 0);
    EXPECT_TRUE(withinUlp(2.25f, 2.25f, 0));
}

TEST(Ulp, AdjacentFloatsAreOneApart)
{
    const float one_up = nextAfterF(1.0f, 2.0f);
    const float one_dn = nextAfterF(1.0f, 0.0f);
    EXPECT_EQ(ulpDistance(1.0f, one_up), 1);
    EXPECT_EQ(ulpDistance(one_up, 1.0f), 1);
    EXPECT_EQ(ulpDistance(1.0f, one_dn), 1);
    EXPECT_EQ(ulpDistance(one_dn, one_up), 2);

    EXPECT_TRUE(withinUlp(1.0f, one_up, 1));
    EXPECT_FALSE(withinUlp(1.0f, one_up, 0));
    EXPECT_FALSE(withinUlp(one_dn, one_up, 1));

    // Adjacency holds at any magnitude — the distance is a count of
    // representable floats, not an epsilon.
    const float big = 1e30f;
    EXPECT_EQ(ulpDistance(big, nextAfterF(big, 2e30f)), 1);
    const float neg = -7.0f;
    EXPECT_EQ(ulpDistance(neg, nextAfterF(neg, -8.0f)), 1);
}

TEST(Ulp, SignOfZeroIsNotADivergence)
{
    EXPECT_EQ(ulpDistance(0.0f, -0.0f), 0);
    EXPECT_EQ(ulpDistance(-0.0f, 0.0f), 0);
    EXPECT_TRUE(withinUlp(0.0f, -0.0f, 0));

    // The integer line is continuous through zero: the smallest
    // positive and smallest negative subnormals straddle zero at
    // distance 1 each, distance 2 from each other.
    const float tiny = std::numeric_limits<float>::denorm_min();
    EXPECT_EQ(ulpDistance(0.0f, tiny), 1);
    EXPECT_EQ(ulpDistance(-0.0f, tiny), 1);
    EXPECT_EQ(ulpDistance(0.0f, -tiny), 1);
    EXPECT_EQ(ulpDistance(-tiny, tiny), 2);
}

TEST(Ulp, NansCompareEqualToNansAndMaximallyFarFromNumbers)
{
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    const float other_nan = -qnan; // different payload/sign bit
    EXPECT_EQ(ulpDistance(qnan, qnan), 0);
    EXPECT_EQ(ulpDistance(qnan, other_nan), 0);
    EXPECT_TRUE(withinUlp(qnan, other_nan, 0));

    const auto kMax = std::numeric_limits<std::int64_t>::max();
    EXPECT_EQ(ulpDistance(qnan, 1.0f), kMax);
    EXPECT_EQ(ulpDistance(0.0f, qnan), kMax);
    EXPECT_FALSE(withinUlp(qnan, 0.0f, 1000000));
}

TEST(Ulp, InfinityIsOrdinaryOnTheIntegerLine)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float fmax = std::numeric_limits<float>::max();
    EXPECT_EQ(ulpDistance(inf, inf), 0);
    EXPECT_EQ(ulpDistance(inf, fmax), 1);
    EXPECT_EQ(ulpDistance(-inf, -fmax), 1);
    // Opposite infinities span the entire finite line.
    EXPECT_GT(ulpDistance(inf, -inf), ulpDistance(inf, 0.0f));
}

TEST(Ulp, KeyIsMonotoneAcrossSignAndMagnitude)
{
    const float samples[] = {-1e30f, -2.0f, -1.0f, -1e-30f, -0.0f,
                             0.0f,   1e-30f, 1.0f, 2.0f,    1e30f};
    for (std::size_t i = 1; i < std::size(samples); ++i)
        EXPECT_LE(ulpKey(samples[i - 1]), ulpKey(samples[i]))
            << samples[i - 1] << " vs " << samples[i];
}

} // namespace
} // namespace macross::support
