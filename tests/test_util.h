/**
 * @file
 * Shared helpers for MacroSS tests: compile/run programs and compare
 * output streams bit-exactly.
 */
#pragma once

#include <gtest/gtest.h>

#include "interp/runner.h"
#include "support/ulp.h"
#include "vectorizer/pipeline.h"

namespace macross::testutil {

/** Run a compiled program until @p n sink elements are captured. */
inline std::vector<interp::Value>
capture(const vectorizer::CompiledProgram& p, std::int64_t n,
        machine::CostSink* cost = nullptr)
{
    interp::Runner r(p.graph, p.schedule, cost);
    r.runUntilCaptured(n);
    return {r.captured().begin(), r.captured().begin() + n};
}

/** Assert two captured streams are bit-identical. */
inline void
expectSameStream(const std::vector<interp::Value>& a,
                 const std::vector<interp::Value>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], b[i])
            << "streams diverge at element " << i << ": " << a[i].str()
            << " vs " << b[i].str();
    }
}

/**
 * Assert two captured streams agree within @p tol ULPs on float
 * elements and bit-exactly on integer elements. This is the
 * comparison for SimdSpec.allowUlpDivergence builds; everything else
 * should use expectSameStream (bit-identity is the default contract).
 */
inline void
expectStreamsWithinUlp(const std::vector<interp::Value>& a,
                       const std::vector<interp::Value>& b,
                       std::int64_t tol)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].type() == b[i].type())
            << "streams diverge in type at element " << i << ": "
            << a[i].str() << " vs " << b[i].str();
        for (int l = 0; l < a[i].lanes(); ++l) {
            if (a[i].type().isFloat()) {
                ASSERT_TRUE(
                    support::withinUlp(a[i].f(l), b[i].f(l), tol))
                    << "streams diverge at element " << i << " lane "
                    << l << ": " << a[i].str() << " vs " << b[i].str()
                    << " (" << support::ulpDistance(a[i].f(l), b[i].f(l))
                    << " ULPs apart, tolerance " << tol << ")";
            } else {
                ASSERT_EQ(a[i].rawBits(l), b[i].rawBits(l))
                    << "streams diverge at element " << i << " lane "
                    << l << ": " << a[i].str() << " vs " << b[i].str();
            }
        }
    }
}

/**
 * The central correctness property: macro-SIMDization must preserve
 * the program's output stream bit-exactly.
 */
inline void
expectTransformPreservesOutput(const graph::StreamPtr& program,
                               const vectorizer::SimdizeOptions& opts,
                               std::int64_t n = 256)
{
    auto scalar = vectorizer::compileScalar(program);
    auto simd = vectorizer::macroSimdize(program, opts);
    expectSameStream(capture(scalar, n), capture(simd, n));
}

/** Steady-state cycles per sink element under a machine model. */
inline double
cyclesPerElement(const vectorizer::CompiledProgram& p,
                 const machine::MachineDesc& m, int iters = 20)
{
    machine::CostSink cost(m);
    interp::Runner r(p.graph, p.schedule, &cost);
    r.runInit();
    std::size_t before = r.captured().size();
    r.runSteady(iters);
    std::size_t produced = r.captured().size() - before;
    EXPECT_GT(produced, 0u);
    return cost.totalCycles() / static_cast<double>(produced);
}

} // namespace macross::testutil
