/**
 * @file
 * End-to-end acceptance test for the CLI's JSON report: runs the real
 * `macross` binary (path injected by CMake as MACROSS_CLI_PATH) with
 * --json-report and validates the emitted document with the library's
 * own JSON parser — per-actor transform decisions, cost-model
 * estimates, and per-actor/per-op-class steady-state cycle
 * breakdowns all present.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#ifndef _WIN32
#include <sys/wait.h>
#endif

#include <gtest/gtest.h>

#include "native/simd_probe.h"
#include "support/json.h"

namespace macross {
namespace {

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int
runCli(const std::string& args)
{
    std::string cmd = std::string(MACROSS_CLI_PATH) + " " + args +
                      " > /dev/null 2>&1";
    return std::system(cmd.c_str());
}

/** Like runCli, but decodes the child's actual exit status. */
int
runCliExitCode(const std::string& args)
{
    int raw = runCli(args);
#ifndef _WIN32
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
#else
    return raw;
#endif
}

TEST(CliReport, FmRadioJsonReportIsCompleteAndValid)
{
    const std::string out = "cli_report_test_out.json";
    std::remove(out.c_str());
    ASSERT_EQ(runCli("--bench FMRadio --simd --json-report " + out),
              0);

    json::Value root = json::parse(readFile(out));

    EXPECT_EQ(root.find("program")->asString(), "FMRadio");
    EXPECT_EQ(root.find("mode")->asString(), "macro-simd");
    ASSERT_NE(root.find("machine"), nullptr);
    EXPECT_GE(root.find("machine")->find("simdWidth")->asInt(), 2);

    // Per-actor transform decisions with cost-model estimates.
    const json::Value* compilation = root.find("compilation");
    ASSERT_NE(compilation, nullptr);
    const json::Value* decisions = compilation->find("decisions");
    ASSERT_NE(decisions, nullptr);
    ASSERT_GT(decisions->size(), 0u);
    bool sawCostEstimate = false;
    for (const json::Value& d : decisions->items()) {
        EXPECT_NE(d.find("actor"), nullptr);
        EXPECT_NE(d.find("kind"), nullptr);
        EXPECT_NE(d.find("accepted"), nullptr);
        if (const json::Value* cost = d.find("cost")) {
            EXPECT_GT(cost->find("scalarCycles")->asDouble(), 0.0);
            EXPECT_GT(cost->find("simdCycles")->asDouble(), 0.0);
            sawCostEstimate = true;
        }
    }
    EXPECT_TRUE(sawCostEstimate);

    // Steady-state run: totals plus the per-actor x per-op-class
    // cycle matrix.
    const json::Value* run = root.find("run");
    ASSERT_NE(run, nullptr);
    EXPECT_GT(run->find("sinkElements")->asInt(), 0);
    EXPECT_GT(run->find("totalCycles")->asDouble(), 0.0);
    const json::Value* cost = run->find("cost");
    ASSERT_NE(cost, nullptr);
    ASSERT_GT(cost->find("classes")->size(), 0u);
    const json::Value* actors = cost->find("actors");
    ASSERT_NE(actors, nullptr);
    ASSERT_GT(actors->size(), 0u);
    bool sawClassBreakdown = false;
    for (const json::Value& a : actors->items()) {
        EXPECT_GT(a.find("cycles")->asDouble(), 0.0);
        if (a.find("classes")->size() > 0)
            sawClassBreakdown = true;
    }
    EXPECT_TRUE(sawClassBreakdown);

    // Runner statistics: firing counts and tape traffic.
    const json::Value* stats = run->find("stats");
    ASSERT_NE(stats, nullptr);
    ASSERT_GT(stats->find("actors")->size(), 0u);
    std::int64_t totalFires = 0;
    for (const json::Value& a : stats->find("actors")->items())
        totalFires += a.find("fires")->asInt();
    EXPECT_GT(totalFires, 0);
    ASSERT_GT(stats->find("tapes")->size(), 0u);
    std::int64_t pushed = 0;
    for (const json::Value& t : stats->find("tapes")->items())
        pushed += t.find("elementsPushed")->asInt();
    EXPECT_GT(pushed, 0);

    // Trace archive (pass timers always collected for JSON reports).
    const json::Value* trace = root.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_NE(trace->find("timers")->find("vectorizer.macroSimdize"),
              nullptr);

    std::remove(out.c_str());
}

TEST(CliReport, ScalarModeStillProducesRunData)
{
    const std::string out = "cli_report_scalar_out.json";
    std::remove(out.c_str());
    ASSERT_EQ(
        runCli("--bench FMRadio --scalar --json-report " + out), 0);
    json::Value root = json::parse(readFile(out));
    EXPECT_EQ(root.find("mode")->asString(), "scalar");
    // Scalar builds carry no decisions but a full run section.
    EXPECT_EQ(root.find("compilation")->find("decisions")->size(), 0u);
    EXPECT_GT(root.find("run")->find("totalCycles")->asDouble(), 0.0);
    std::remove(out.c_str());
}

TEST(CliReport, EngineFlagSelectsEngineAndMatchesCycles)
{
    const std::string treeOut = "cli_report_tree_out.json";
    const std::string vmOut = "cli_report_vm_out.json";
    std::remove(treeOut.c_str());
    std::remove(vmOut.c_str());
    ASSERT_EQ(runCli("--bench FMRadio --simd --engine tree "
                     "--json-report " + treeOut),
              0);
    ASSERT_EQ(runCli("--bench FMRadio --simd --engine bytecode "
                     "--json-report " + vmOut),
              0);

    json::Value tree = json::parse(readFile(treeOut));
    json::Value vm = json::parse(readFile(vmOut));
    const json::Value* treeStats = tree.find("run")->find("stats");
    const json::Value* vmStats = vm.find("run")->find("stats");
    EXPECT_EQ(treeStats->find("engine")->asString(), "tree");
    EXPECT_EQ(vmStats->find("engine")->asString(), "bytecode");

    // Both engines model the exact same cycle count.
    EXPECT_DOUBLE_EQ(
        tree.find("run")->find("totalCycles")->asDouble(),
        vm.find("run")->find("totalCycles")->asDouble());

    // The bytecode run reports per-actor instruction counts and the
    // compile time spent lowering the actors.
    bool sawInstrs = false;
    for (const json::Value& a : vmStats->find("actors")->items()) {
        if (const json::Value* bi = a.find("bytecodeInstrs")) {
            EXPECT_GT(bi->asInt(), 0);
            sawInstrs = true;
        }
    }
    EXPECT_TRUE(sawInstrs);
    ASSERT_NE(vmStats->find("bytecodeCompileMicros"), nullptr);

    EXPECT_NE(runCli("--bench FMRadio --engine llvm"), 0);

    std::remove(treeOut.c_str());
    std::remove(vmOut.c_str());
}

TEST(CliReport, ThreadsFlagReportsParallelSectionWithSameCycles)
{
    const std::string serialOut = "cli_report_serial_out.json";
    const std::string parOut = "cli_report_parallel_out.json";
    std::remove(serialOut.c_str());
    std::remove(parOut.c_str());
    ASSERT_EQ(runCli("--bench FMRadio --simd --run 20 "
                     "--json-report " + serialOut),
              0);
    ASSERT_EQ(runCli("--bench FMRadio --simd --run 20 --threads 2 "
                     "--json-report " + parOut),
              0);

    json::Value serial = json::parse(readFile(serialOut));
    json::Value par = json::parse(readFile(parOut));

    EXPECT_EQ(par.find("run")->find("threads")->asInt(), 2);
    const json::Value* stats = par.find("run")->find("stats");
    const json::Value* p = stats->find("parallel");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->find("threads")->asInt(), 2);
    ASSERT_GT(p->find("coreOf")->size(), 0u);
    EXPECT_EQ(p->find("coreLoad")->size(), 2u);
    ASSERT_GT(p->find("rings")->size(), 0u);
    for (const json::Value& r : p->find("rings")->items()) {
        EXPECT_GT(r.find("capacity")->asInt(), 0);
        EXPECT_GT(r.find("wordsPerIteration")->asInt(), 0);
    }
    EXPECT_GT(p->find("steadyWallMicros")->asDouble(), 0.0);
    ASSERT_NE(p->find("measuredSpeedup"), nullptr);

    // The parallel run models the exact same cycles as the serial one.
    EXPECT_DOUBLE_EQ(
        serial.find("run")->find("totalCycles")->asDouble(),
        par.find("run")->find("totalCycles")->asDouble());

    EXPECT_NE(runCli("--bench FMRadio --threads 0"), 0);

    std::remove(serialOut.c_str());
    std::remove(parOut.c_str());
}

TEST(CliReport, EmitHonorsRunCountAndPrintLimit)
{
    // Regression: --emit used to ignore --run N and always bake the
    // default iteration count into the emitted main().
    const std::string out = "cli_emit_plumbing_out.cpp";
    std::remove(out.c_str());
    ASSERT_EQ(runCli("--bench FMRadio --simd --emit " + out +
                     " --run 13 --emit-print 5"),
              0);
    std::string src = readFile(out);
    EXPECT_NE(src.find("long iters = 13;"), std::string::npos)
        << "--run N not plumbed into the emitted main()";
    EXPECT_NE(src.find("i < rec.size() && i < 5"), std::string::npos)
        << "--emit-print K not plumbed into the emitted main()";
    std::remove(out.c_str());

    EXPECT_NE(runCli("--bench FMRadio --emit-print banana"), 0);
}

TEST(CliReport, NativeEngineReportsStatsAndMatchesSinkCount)
{
    const std::string natOut = "cli_report_native_out.json";
    const std::string vmOut = "cli_report_native_vm_out.json";
    std::remove(natOut.c_str());
    std::remove(vmOut.c_str());
    ASSERT_EQ(runCli("--bench FMRadio --simd --run 10 "
                     "--engine native --json-report " + natOut),
              0);
    ASSERT_EQ(runCli("--bench FMRadio --simd --run 10 "
                     "--engine bytecode --json-report " + vmOut),
              0);

    json::Value nat = json::parse(readFile(natOut));
    json::Value vm = json::parse(readFile(vmOut));
    const json::Value* stats = nat.find("run")->find("stats");
    EXPECT_EQ(stats->find("engine")->asString(), "native");
    const json::Value* n = stats->find("native");
    ASSERT_NE(n, nullptr);
    EXPECT_FALSE(n->find("compiler")->asString().empty());
    EXPECT_FALSE(n->find("soPath")->asString().empty());
    ASSERT_NE(n->find("cacheHit"), nullptr);
    ASSERT_NE(n->find("compileMillis"), nullptr);
    EXPECT_GT(n->find("steadyWallMicros")->asDouble(), 0.0);

    // Same schedule, same iterations: the native run must consume
    // exactly as many sink elements as the bytecode run.
    EXPECT_EQ(nat.find("run")->find("sinkElements")->asInt(),
              vm.find("run")->find("sinkElements")->asInt());

    std::remove(natOut.c_str());
    std::remove(vmOut.c_str());
}

TEST(CliReport, NativeParallelRunReportsPartitionedStats)
{
    const std::string natOut = "cli_report_native_par_out.json";
    const std::string vmOut = "cli_report_native_par_vm_out.json";
    std::remove(natOut.c_str());
    std::remove(vmOut.c_str());
    ASSERT_EQ(runCli("--bench FMRadio --simd --run 10 "
                     "--engine native --threads 2 --json-report " +
                     natOut),
              0);
    ASSERT_EQ(runCli("--bench FMRadio --simd --run 10 "
                     "--engine bytecode --json-report " + vmOut),
              0);

    json::Value nat = json::parse(readFile(natOut));
    json::Value vm = json::parse(readFile(vmOut));
    const json::Value* stats = nat.find("run")->find("stats");
    EXPECT_EQ(stats->find("engine")->asString(), "native");
    ASSERT_NE(stats->find("native"), nullptr);
    EXPECT_EQ(stats->find("native")->find("abiVersion")->asInt(), 3);
    const json::Value* p = stats->find("parallel");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->find("threads")->asInt(), 2);
    EXPECT_FALSE(p->find("degradedToSerial")->asBool());
    const json::Value* pn = p->find("native");
    ASSERT_NE(pn, nullptr);
    EXPECT_EQ(pn->find("partitions")->asInt(), 2);
    EXPECT_EQ(pn->find("partitionWallMicros")->size(), 2u);
    // The partition weights come from a modeled profiling pass, so
    // the greedy partition actually spreads load over both cores.
    ASSERT_EQ(p->find("coreLoad")->size(), 2u);
    EXPECT_GT(p->find("coreLoad")->at(0).asDouble(), 0.0);

    // Same schedule, same iterations as the bytecode reference.
    EXPECT_EQ(nat.find("run")->find("sinkElements")->asInt(),
              vm.find("run")->find("sinkElements")->asInt());

    std::remove(natOut.c_str());
    std::remove(vmOut.c_str());
}

TEST(CliTuner, KnobUsageErrorsExitAsUsage)
{
    // Each rejection is a plain-prose usage error (exit 2), never an
    // assert or a stack trace.
    EXPECT_EQ(runCliExitCode("--bench FMRadio --machine pdp11"), 2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --batch-iters 8"), 2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --ring-cap 128"), 2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --threads 2 "
                             "--batch-iters 0"),
              2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --threads 2 "
                             "--ring-cap banana"),
              2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --autotune"), 2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --tuned"), 2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --engine native "
                             "--tune-budget 3"),
              2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --native-isa "
                             "x86-64-v3"),
              2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --engine native "
                             "--native-isa bad,flags"),
              2);
}

TEST(CliTuner, MachineFlagSelectsWideMachine)
{
    const std::string out = "cli_tuner_machine_out.json";
    std::remove(out.c_str());
    ASSERT_EQ(runCliExitCode("--bench FMRadio --simd --machine wide8 "
                             "--json-report " + out),
              0);
    json::Value root = json::parse(readFile(out));
    EXPECT_EQ(root.find("machine")->find("name")->asString(),
              "wide-8");
    // --machine sets the default SW; --width still overrides it.
    EXPECT_EQ(root.find("machine")->find("simdWidth")->asInt(), 8);
    std::remove(out.c_str());

    ASSERT_EQ(runCliExitCode("--bench FMRadio --simd --machine wide8 "
                             "--width 4 --json-report " + out),
              0);
    root = json::parse(readFile(out));
    EXPECT_EQ(root.find("machine")->find("simdWidth")->asInt(), 4);
    std::remove(out.c_str());

    // Without --native-simd the emitted lane width follows the
    // machine's planned width, clipped to the host probe.
    ASSERT_EQ(runCliExitCode("--bench DCT --simd --machine wide8 "
                             "--engine native --run 4 --json-report " +
                             out),
              0);
    root = json::parse(readFile(out));
    const int expected =
        std::min(8, macross::native::probeMaxLaneWidth());
    EXPECT_EQ(root.find("run")
                  ->find("stats")
                  ->find("native")
                  ->find("simd")
                  ->find("laneWidth")
                  ->asInt(),
              expected);
    std::remove(out.c_str());
}

TEST(CliTuner, BatchAndRingKnobsReachTheParallelRunner)
{
    const std::string out = "cli_tuner_knobs_out.json";
    std::remove(out.c_str());
    ASSERT_EQ(runCliExitCode("--bench FMRadio --simd --run 20 "
                             "--threads 2 --batch-iters 4 "
                             "--ring-cap 256 --json-report " + out),
              0);
    json::Value root = json::parse(readFile(out));
    const json::Value* p =
        root.find("run")->find("stats")->find("parallel");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->find("batchIterations")->asInt(), 4);
    EXPECT_EQ(p->find("minRingSlots")->asInt(), 256);
    for (const json::Value& r : p->find("rings")->items())
        EXPECT_GE(r.find("capacity")->asInt(), 256);
    std::remove(out.c_str());
}

TEST(CliTuner, AutotuneSearchesPersistsAndHitsCache)
{
    namespace fs = std::filesystem;
    const std::string cacheDir =
        (fs::current_path() / "cli_tuner_cache_dir").string();
    fs::remove_all(cacheDir);
    ASSERT_EQ(setenv("MACROSS_TUNE_CACHE_DIR", cacheDir.c_str(), 1),
              0);

    const std::string out1 = "cli_tuner_autotune_1.json";
    const std::string out2 = "cli_tuner_autotune_2.json";
    const std::string out3 = "cli_tuner_tuned.json";
    std::remove(out1.c_str());
    std::remove(out2.c_str());
    std::remove(out3.c_str());

    const std::string args = "--bench RunningExample --engine native "
                             "--autotune --tune-budget 2 --run 4 "
                             "--json-report ";
    ASSERT_EQ(runCliExitCode(args + out1), 0);
    json::Value first = json::parse(readFile(out1));
    const json::Value* t1 =
        first.find("run")->find("stats")->find("tuner");
    ASSERT_NE(t1, nullptr);
    EXPECT_FALSE(t1->find("cacheHit")->asBool());
    EXPECT_EQ(t1->find("candidatesMeasured")->asInt(), 2);
    EXPECT_GT(t1->find("bestMicrosPerElement")->asDouble(), 0.0);
    // Measured winner is never worse than the measured default.
    EXPECT_LE(t1->find("bestMicrosPerElement")->asDouble(),
              t1->find("defaultMicrosPerElement")->asDouble());

    // Second run: the persisted winner is reused, no new search.
    ASSERT_EQ(runCliExitCode(args + out2), 0);
    json::Value second = json::parse(readFile(out2));
    const json::Value* t2 =
        second.find("run")->find("stats")->find("tuner");
    ASSERT_NE(t2, nullptr);
    EXPECT_TRUE(t2->find("cacheHit")->asBool());
    EXPECT_EQ(t2->find("bestKey")->asString(),
              t1->find("bestKey")->asString());
    EXPECT_EQ(t2->find("measurements")->size(), 0u);

    // --tuned consumes the same entry without searching.
    ASSERT_EQ(runCliExitCode("--bench RunningExample --engine native "
                             "--tuned --run 4 --json-report " + out3),
              0);
    json::Value tuned = json::parse(readFile(out3));
    const json::Value* t3 =
        tuned.find("run")->find("stats")->find("tuner");
    ASSERT_NE(t3, nullptr);
    EXPECT_TRUE(t3->find("cacheHit")->asBool());
    EXPECT_EQ(t3->find("bestKey")->asString(),
              t1->find("bestKey")->asString());

    unsetenv("MACROSS_TUNE_CACHE_DIR");
    std::remove(out1.c_str());
    std::remove(out2.c_str());
    std::remove(out3.c_str());
    fs::remove_all(cacheDir);
}

TEST(CliReport, HelpExitsCleanly)
{
    EXPECT_EQ(runCli("--help"), 0);
}

TEST(CliReport, UnknownOptionFails)
{
    EXPECT_NE(runCli("--bench FMRadio --no-such-flag"), 0);
}

TEST(CliReport, UserErrorsExitOneInternalErrorsExitTwo)
{
    // A malformed source program is a user error: FatalError, exit 1.
    const std::string bad = "cli_exit_code_bad.str";
    {
        std::ofstream out(bad);
        out << "void->float filter F() { work push 1 { push( } }\n";
    }
    EXPECT_EQ(runCliExitCode(bad), 1);
    std::remove(bad.c_str());

    // An internal invariant violation is a PanicError: exit 2.
    EXPECT_EQ(
        runCliExitCode("--bench FMRadio --inject-fault panic"), 2);

    // Healthy runs still exit 0.
    EXPECT_EQ(runCliExitCode("--bench FMRadio --run 2"), 0);
}

TEST(CliReport, WatchdogSurvivesInjectedStallAndReportsFault)
{
    const std::string out = "cli_report_watchdog_out.json";
    const std::string serialOut = "cli_report_watchdog_serial.json";
    std::remove(out.c_str());
    std::remove(serialOut.c_str());
    ASSERT_EQ(runCliExitCode("--bench FMRadio --simd --run 20 "
                             "--json-report " + serialOut),
              0);
    // The injected stall (400 ms) dwarfs the watchdog (50 ms): the
    // run must degrade to the serial fallback and still exit 0.
    ASSERT_EQ(runCliExitCode(
                  "--bench FMRadio --simd --run 20 --threads 2 "
                  "--watchdog-ms 50 --inject-fault worker-stall:400 "
                  "--json-report " + out),
              0);

    json::Value serial = json::parse(readFile(serialOut));
    json::Value par = json::parse(readFile(out));
    const json::Value* p =
        par.find("run")->find("stats")->find("parallel");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->find("watchdogMs")->asInt(), 50);
    EXPECT_TRUE(p->find("degradedToSerial")->asBool());
    ASSERT_GE(p->find("faults")->size(), 1u);
    const json::Value& f = p->find("faults")->at(0);
    EXPECT_EQ(f.find("kind")->asString(), "workerStall");
    EXPECT_TRUE(f.find("fallbackUsed")->asBool());
    EXPECT_TRUE(f.find("fallbackVerified")->asBool());
    EXPECT_GT(f.find("detectedAfterMs")->asDouble(), 0.0);

    // Degraded or not, the run reports the exact serial cycles.
    EXPECT_DOUBLE_EQ(
        serial.find("run")->find("totalCycles")->asDouble(),
        par.find("run")->find("totalCycles")->asDouble());

    // Unknown fault kinds are user errors.
    EXPECT_EQ(runCliExitCode(
                  "--bench FMRadio --inject-fault no-such-fault"),
              1);

    std::remove(out.c_str());
    std::remove(serialOut.c_str());
}

TEST(CliReport, DegradeOptionIsValidatedAgainstTheEngine)
{
    // --degrade is the native engine's fault policy: anywhere else it
    // is a usage error, as is a value outside off|auto|always.
    EXPECT_EQ(runCliExitCode("--bench FMRadio --degrade auto"), 2);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --engine native "
                             "--degrade sideways"),
              2);
}

TEST(CliReport, NativeCrashFaultTaxonomyAndQuarantineLifecycle)
{
    // One cache dir across the whole lifecycle: the injected crash
    // poisons the entry, the degraded rerun crashes the recompiled
    // object too (second strike), and the follow-up run then trips
    // the permanent quarantine — all visible as CLI exit codes.
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "macross_cli_crash_cache";
    fs::remove_all(dir);
    ::setenv("MACROSS_CACHE_DIR", dir.c_str(), 1);
    const std::string out = "cli_crash_report.json";
    std::remove(out.c_str());

    // Strike one, --degrade off (the default): structured fault,
    // exit 4.
    EXPECT_EQ(runCliExitCode("--bench FMRadio --simd --run 4 "
                             "--engine native "
                             "--inject-fault native-crash"),
              4);

    // Strike two, --degrade auto: the entry is distrusted so this
    // run recompiles (the one retry), crashes again, degrades to the
    // bytecode VM, verifies bit-identity against it, and exits 0 —
    // with the typed fault in the JSON report.
    EXPECT_EQ(runCliExitCode("--bench FMRadio --simd --run 4 "
                             "--engine native --degrade auto "
                             "--ulp-tol 0 "
                             "--inject-fault native-crash "
                             "--json-report " + out),
              0);
    json::Value root = json::parse(readFile(out));
    const json::Value* stats = root.find("run")->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("engine")->asString(), "native");
    const json::Value* nat = stats->find("native");
    ASSERT_NE(nat, nullptr);
    EXPECT_TRUE(nat->find("degraded")->asBool());
    EXPECT_EQ(nat->find("degradedTo")->asString(), "bytecode");
    EXPECT_TRUE(nat->find("degradeVerified")->asBool());
    const json::Value* faults = nat->find("faults");
    ASSERT_NE(faults, nullptr);
    ASSERT_GE(faults->size(), 1u);
    EXPECT_EQ(faults->at(0).find("kind")->asString(), "crash");
    EXPECT_EQ(faults->at(0).find("signalName")->asString(),
              "SIGSEGV");
    EXPECT_EQ(faults->at(0).find("phase")->asString(), "steady");

    // Two recorded crashes: the entry is now permanently
    // quarantined. No injection needed — the sidecar does the work.
    EXPECT_EQ(runCliExitCode("--bench FMRadio --simd --run 4 "
                             "--engine native"),
              4);

    // Resetting the cache dir lifts the quarantine.
    const std::string dir2 = dir + "_reset";
    fs::remove_all(dir2);
    ::setenv("MACROSS_CACHE_DIR", dir2.c_str(), 1);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --simd --run 4 "
                             "--engine native --ulp-tol 0"),
              0);

    ::unsetenv("MACROSS_CACHE_DIR");
    std::remove(out.c_str());
    fs::remove_all(dir);
    fs::remove_all(dir2);
}

TEST(CliReport, WedgedCompileTimesOutWithExitFour)
{
    namespace fs = std::filesystem;
    const std::string dir =
        ::testing::TempDir() + "macross_cli_wedge_cache";
    fs::remove_all(dir);
    ::setenv("MACROSS_CACHE_DIR", dir.c_str(), 1);
    EXPECT_EQ(runCliExitCode("--bench FMRadio --simd --run 4 "
                             "--engine native "
                             "--inject-fault compile-timeout"),
              4);
    ::unsetenv("MACROSS_CACHE_DIR");
    fs::remove_all(dir);
}

} // namespace
} // namespace macross
