/**
 * @file
 * Auto-tuner tests: deterministic enumeration, stub-driven search
 * (no host compiler needed), the never-worse-than-default guarantee,
 * persistent-cache round trips including corruption and stale-host
 * handling, CompileService memoization, and a differential check
 * that every configuration the tuner explores preserves the
 * program's output stream.
 */
#include <cstdio>
#include <fstream>
#include <functional>
#include <set>

#include <gtest/gtest.h>

#ifndef _WIN32
#include <stdlib.h>
#endif

#include "../test_util.h"
#include "benchmarks/suite.h"
#include "native/host_fingerprint.h"
#include "native/native_fault.h"
#include "support/diagnostics.h"
#include "tuner/tuner.h"

namespace macross::tuner {
namespace {

/** Fresh empty directory for a test-local tuning cache. */
std::string
makeTempDir()
{
    char buf[] = "/tmp/macross-tuner-test-XXXXXX";
    const char* dir = ::mkdtemp(buf);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "";
}

/**
 * Deterministic measurement stub: the score is a pure function of
 * the configuration, and every call is counted. No compiler, no
 * clock, no noise.
 */
class StubMeasurer : public Measurer {
  public:
    explicit StubMeasurer(std::function<double(const TuneConfig&)> f)
        : f_(std::move(f))
    {
    }
    double measure(vectorizer::CompileService&,
                   const TuneConfig& config) override
    {
        ++calls;
        return f_(config);
    }
    int calls = 0;

  private:
    std::function<double(const TuneConfig&)> f_;
};

/** Options that make the search host-independent: fixed lane-width
 *  and thread ceilings, no ISA probe, generous budget. */
TunerOptions
deterministicOptions(const std::string& cache_dir)
{
    TunerOptions opt;
    opt.maxLaneWidthOverride = 16;
    opt.maxThreads = 4;
    opt.exploreIsa = false;
    opt.measureBudget = 100;
    opt.cacheDir = cache_dir;
    return opt;
}

graph::StreamPtr
testProgram()
{
    return benchmarks::makeRunningExample();
}

TEST(TunerEnumerate, DeterministicUniqueAndDefaultFirst)
{
    TunerOptions opt = deterministicOptions(makeTempDir());
    Tuner a(testProgram(), "t", opt);
    Tuner b(testProgram(), "t", opt);

    const auto ca = a.enumerate();
    const auto cb = b.enumerate();
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i)
        EXPECT_EQ(ca[i].key(), cb[i].key());

    ASSERT_FALSE(ca.empty());
    EXPECT_EQ(ca[0].key(), a.defaultConfig().key());

    std::set<std::string> keys;
    bool sawScalar = false, sawSagu = false, sawWide8 = false,
         sawWide16 = false, sawThreads = false;
    for (const TuneConfig& c : ca) {
        EXPECT_TRUE(keys.insert(c.key()).second)
            << "duplicate candidate " << c.key();
        sawScalar |= !c.simd;
        sawSagu |= c.sagu;
        sawWide8 |= c.machine == "wide8";
        sawWide16 |= c.machine == "wide16";
        sawThreads |= c.threads > 1;
    }
    EXPECT_TRUE(sawScalar);
    EXPECT_TRUE(sawSagu);
    EXPECT_TRUE(sawWide8);
    EXPECT_TRUE(sawWide16);
    EXPECT_TRUE(sawThreads);
}

TEST(TunerEnumerate, ClipsToHostCapabilities)
{
    TunerOptions opt = deterministicOptions(makeTempDir());
    opt.maxLaneWidthOverride = 1;  // scalar-only host
    opt.maxThreads = 1;
    Tuner t(testProgram(), "t", opt);
    for (const TuneConfig& c : t.enumerate()) {
        EXPECT_EQ(c.laneWidth, 1) << c.key();
        EXPECT_EQ(c.threads, 1) << c.key();
    }
}

TEST(TunerSearch, StubSearchFindsWinnerAndCachesIt)
{
    const std::string dir = makeTempDir();
    TunerOptions opt = deterministicOptions(dir);
    // SAGU configurations are "fastest" under this stub.
    StubMeasurer stub([](const TuneConfig& c) {
        if (c.sagu)
            return 2.0;
        return c.threads > 1 ? 50.0 : 10.0;
    });

    Tuner t(testProgram(), "t", opt, &stub);
    TuneResult res = t.tune();
    EXPECT_FALSE(res.cacheHit);
    EXPECT_TRUE(res.best.sagu) << res.best.key();
    EXPECT_DOUBLE_EQ(res.bestMicrosPerElement, 2.0);
    EXPECT_DOUBLE_EQ(res.defaultMicrosPerElement, 10.0);
    EXPECT_DOUBLE_EQ(res.speedupOverDefault(), 5.0);
    EXPECT_GT(res.candidatesEnumerated, 5);
    EXPECT_EQ(res.candidatesMeasured,
              static_cast<int>(res.measurements.size()));
    EXPECT_GT(stub.calls, 0);
    // The default is always among the measurements.
    bool sawDefault = false;
    for (const Measurement& m : res.measurements)
        sawDefault |= m.isDefault;
    EXPECT_TRUE(sawDefault);

    // Second tuner, same cache dir: pure cache hit, stub never runs.
    const int callsAfterSearch = stub.calls;
    Tuner t2(testProgram(), "t", opt, &stub);
    TuneResult res2 = t2.tune();
    EXPECT_TRUE(res2.cacheHit);
    EXPECT_EQ(res2.best.key(), res.best.key());
    EXPECT_DOUBLE_EQ(res2.bestMicrosPerElement, 2.0);
    EXPECT_TRUE(res2.measurements.empty());
    EXPECT_EQ(stub.calls, callsAfterSearch);
}

TEST(TunerSearch, NeverWorseThanDefault)
{
    TunerOptions opt = deterministicOptions(makeTempDir());
    opt.useCache = false;
    // The default configuration is the global minimum.
    StubMeasurer stub([&opt](const TuneConfig& c) {
        Tuner probe(testProgram(), "probe", opt);
        return c.key() == probe.defaultConfig().key() ? 1.0 : 5.0;
    });
    Tuner t(testProgram(), "t", opt, &stub);
    TuneResult res = t.tune();
    EXPECT_EQ(res.best.key(), t.defaultConfig().key());
    EXPECT_LE(res.bestMicrosPerElement,
              res.defaultMicrosPerElement);
    EXPECT_DOUBLE_EQ(res.speedupOverDefault(), 1.0);
}

TEST(TunerSearch, FailedCandidatesAreSkippedNotFatal)
{
    TunerOptions opt = deterministicOptions(makeTempDir());
    opt.useCache = false;
    StubMeasurer stub([&opt](const TuneConfig& c) -> double {
        Tuner probe(testProgram(), "probe", opt);
        if (c.key() != probe.defaultConfig().key())
            fatal("candidate cannot be built");
        return 3.0;
    });
    Tuner t(testProgram(), "t", opt, &stub);
    TuneResult res = t.tune();
    EXPECT_EQ(res.best.key(), t.defaultConfig().key());
    int failed = 0;
    for (const Measurement& m : res.measurements) {
        if (m.failed) {
            ++failed;
            EXPECT_FALSE(m.error.empty());
            EXPECT_FALSE(m.isDefault);
        }
    }
    EXPECT_GT(failed, 0);
}

TEST(TunerSearch, CrashingCandidatesAreMarkedFailedWithTheFaultKind)
{
    // A candidate whose emitted code crashes (or whose compile wedges)
    // surfaces as a typed NativeFaultError. The tuner must mark the
    // candidate failed — naming the fault kind — and finish the
    // search, not die mid-tune.
    TunerOptions opt = deterministicOptions(makeTempDir());
    opt.useCache = false;
    StubMeasurer stub([&opt](const TuneConfig& c) -> double {
        Tuner probe(testProgram(), "probe", opt);
        if (c.key() != probe.defaultConfig().key()) {
            native::NativeFaultRecord rec;
            rec.kind = native::NativeFaultKind::Crash;
            rec.phase = "steady";
            rec.signal = 11;
            rec.signalName = "SIGSEGV";
            rec.message = "emitted code crashed in candidate";
            native::throwNativeFault(std::move(rec));
        }
        return 3.0;
    });
    Tuner t(testProgram(), "t", opt, &stub);
    TuneResult res = t.tune();
    EXPECT_EQ(res.best.key(), t.defaultConfig().key());
    int failed = 0;
    for (const Measurement& m : res.measurements) {
        if (!m.failed)
            continue;
        ++failed;
        EXPECT_NE(m.error.find("native fault (crash)"),
                  std::string::npos)
            << m.error;
    }
    EXPECT_GT(failed, 0);
}

TEST(TunerSearch, CrashingDefaultCandidateIsFatal)
{
    // The default configuration is the correctness baseline: if even
    // it faults, the tune is meaningless and must propagate the
    // typed error.
    TunerOptions opt = deterministicOptions(makeTempDir());
    opt.useCache = false;
    StubMeasurer stub([](const TuneConfig&) -> double {
        native::NativeFaultRecord rec;
        rec.kind = native::NativeFaultKind::CompileTimeout;
        rec.phase = "compile";
        rec.message = "host compile timed out";
        native::throwNativeFault(std::move(rec));
    });
    Tuner t(testProgram(), "t", opt, &stub);
    EXPECT_THROW(t.tune(), native::NativeFaultError);
}

TEST(TunerSearch, BudgetBoundsMeasurements)
{
    TunerOptions opt = deterministicOptions(makeTempDir());
    opt.useCache = false;
    opt.measureBudget = 3;
    StubMeasurer stub([](const TuneConfig&) { return 1.0; });
    Tuner t(testProgram(), "t", opt, &stub);
    TuneResult res = t.tune();
    EXPECT_EQ(res.candidatesMeasured, 3);
    EXPECT_EQ(stub.calls, 3);
    EXPECT_TRUE(res.measurements[0].isDefault);
    EXPECT_GT(res.candidatesEnumerated, 3);
}

TEST(TuneCacheTest, RoundTrip)
{
    TuneCache cache(makeTempDir());
    TuneCacheEntry entry;
    entry.program = "RoundTrip";
    entry.programHash = 0x1234abcd5678ef00ull;
    entry.host = native::hostFingerprint();
    entry.config.machine = "wide8";
    entry.config.laneWidth = 8;
    entry.config.sagu = true;
    entry.tunedMicrosPerElement = 0.5;
    entry.defaultMicrosPerElement = 1.5;
    entry.candidatesMeasured = 7;
    cache.store(entry);

    auto loaded = cache.load(entry.programHash, entry.host);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->program, "RoundTrip");
    EXPECT_EQ(loaded->config.key(), entry.config.key());
    EXPECT_DOUBLE_EQ(loaded->tunedMicrosPerElement, 0.5);
    EXPECT_DOUBLE_EQ(loaded->defaultMicrosPerElement, 1.5);
    EXPECT_EQ(loaded->candidatesMeasured, 7);

    // A different program hash is a miss, not a collision.
    EXPECT_FALSE(
        cache.load(entry.programHash + 1, entry.host).has_value());
}

TEST(TuneCacheTest, CorruptFilesAreMissesNeverErrors)
{
    TuneCache cache(makeTempDir());
    const std::uint64_t hash = 42;
    const native::HostFingerprint& host = native::hostFingerprint();
    const std::string path = cache.pathFor(hash, host);

    auto writeFile = [&](const std::string& text) {
        std::ofstream out(path);
        out << text;
    };

    writeFile("this is not json {{{");
    EXPECT_FALSE(cache.load(hash, host).has_value());

    writeFile("[1, 2, 3]");
    EXPECT_FALSE(cache.load(hash, host).has_value());

    // Wrong schema version.
    TuneCacheEntry entry;
    entry.programHash = hash;
    entry.host = host;
    json::Value v = entry.toJson();
    v["schemaVersion"] = kTuneCacheSchemaVersion + 1;
    writeFile(v.dump(2));
    EXPECT_FALSE(cache.load(hash, host).has_value());

    // A config smuggling an invalid lane width must not load.
    v = entry.toJson();
    v["config"]["laneWidth"] = 5;
    writeFile(v.dump(2));
    EXPECT_FALSE(cache.load(hash, host).has_value());

    // An isa value that could inject compiler flags must not load.
    v = entry.toJson();
    v["config"]["isa"] = "native -wl,-rpath,/evil";
    writeFile(v.dump(2));
    EXPECT_FALSE(cache.load(hash, host).has_value());

    // The intact entry still loads (the miss logic is per-defect).
    writeFile(entry.toJson().dump(2));
    EXPECT_TRUE(cache.load(hash, host).has_value());
}

TEST(TuneCacheTest, StaleHostFingerprintIsAMiss)
{
    TuneCache cache(makeTempDir());
    const std::uint64_t hash = 7;
    const native::HostFingerprint& host = native::hostFingerprint();

    // A foreign host's entry sitting at this host's path (e.g. a
    // copied cache directory): the embedded fingerprint decides.
    TuneCacheEntry entry;
    entry.programHash = hash;
    entry.host = host;
    entry.host.cpuModel = "Some Other CPU";
    {
        std::ofstream out(cache.pathFor(hash, host));
        out << entry.toJson().dump(2);
    }
    EXPECT_FALSE(cache.load(hash, host).has_value());
}

TEST(TuneCacheTest, LoadTunedConfigMatchesStore)
{
    const std::string dir = makeTempDir();
    vectorizer::CompileService svc(testProgram());

    EXPECT_FALSE(loadTunedConfig(svc, dir).has_value());

    TuneCache cache(dir);
    TuneCacheEntry entry;
    entry.program = "t";
    entry.programHash = svc.programHash();
    entry.host = native::hostFingerprint();
    entry.config.sagu = true;
    cache.store(entry);

    auto loaded = loadTunedConfig(svc, dir);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->config.sagu);
}

TEST(TuneConfigTest, KeyAndJsonRoundTrip)
{
    TuneConfig c;
    c.machine = "wide16";
    c.sagu = true;
    c.vertical = false;
    c.laneWidth = 16;
    c.isa = "x86-64-v4";
    c.threads = 2;
    c.batchIterations = 64;
    c.ringCapacity = 512;

    TuneConfig back = TuneConfig::fromJson(c.toJson());
    EXPECT_EQ(back.key(), c.key());
    EXPECT_TRUE(back == c);

    TuneConfig other = c;
    other.laneWidth = 8;
    EXPECT_TRUE(other != c);

    // fromJson rejects hostile values outright.
    json::Value bad = c.toJson();
    bad["laneWidth"] = 3;
    EXPECT_THROW(TuneConfig::fromJson(bad), FatalError);
    bad = c.toJson();
    bad["machine"] = "pdp11";
    EXPECT_THROW(TuneConfig::fromJson(bad), FatalError);
    bad = c.toJson();
    bad["threads"] = 0;
    EXPECT_THROW(TuneConfig::fromJson(bad), FatalError);
}

TEST(CompileServiceTest, MemoizesByOptionsKey)
{
    vectorizer::CompileService svc(testProgram());
    vectorizer::SimdizeOptions opts;
    opts.machine = machine::machineByName("nehalem");

    const auto& a = svc.compile(opts, true);
    const auto& b = svc.compile(opts, true);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(svc.cachedCompilations(), 1u);

    vectorizer::SimdizeOptions wide;
    wide.machine = machine::machineByName("wide8");
    const auto& c = svc.compile(wide, true);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(svc.cachedCompilations(), 2u);

    const auto& s1 = svc.scalar();
    const auto& s2 = svc.compile(opts, false);
    EXPECT_EQ(&s1, &s2);
    EXPECT_EQ(svc.cachedCompilations(), 3u);
}

TEST(CompileServiceTest, ProgramHashIsStableAndContentSensitive)
{
    vectorizer::CompileService a(testProgram());
    vectorizer::CompileService b(testProgram());
    EXPECT_EQ(a.programHash(), b.programHash());
    EXPECT_NE(a.programHash(), 0u);

    vectorizer::CompileService other(
        benchmarks::benchmarkByName("DCT"));
    EXPECT_NE(a.programHash(), other.programHash());
}

TEST(HostFingerprintTest, JsonRoundTripAndKey)
{
    const native::HostFingerprint& host = native::hostFingerprint();
    EXPECT_FALSE(host.key().empty());
    EXPECT_GE(host.hardwareThreads, 1);
    EXPECT_GE(host.maxLaneWidth, 1);

    native::HostFingerprint back =
        native::HostFingerprint::fromJson(host.toJson());
    EXPECT_TRUE(back == host);

    native::HostFingerprint changed = back;
    changed.isa = "different";
    EXPECT_TRUE(changed != host);
    EXPECT_NE(changed.key(), host.key());
}

/**
 * The differential battery: every configuration the tuner can
 * explore must preserve the program's output stream bit-exactly on
 * the bytecode VM. (The native engine's own equivalence is covered
 * by the native differential tests; this pins the transform side of
 * the search space.)
 */
TEST(TunerDifferential, EveryExploredConfigPreservesOutput)
{
    TunerOptions opt = deterministicOptions(makeTempDir());
    Tuner t(testProgram(), "t", opt);

    auto scalar = vectorizer::compileScalar(testProgram());
    auto want = testutil::capture(scalar, 192);

    std::set<std::string> tested;
    for (const TuneConfig& c : t.enumerate()) {
        // Distinct vectorizer outputs only: execution knobs (W,
        // threads, rings) don't change the transformed graph.
        const std::string key = vectorizer::CompileService::optionsKey(
            c.simdizeOptions(), c.simd);
        if (!tested.insert(key).second)
            continue;
        SCOPED_TRACE(c.key());
        const auto& p = t.service().compile(c.simdizeOptions(), c.simd);
        testutil::expectSameStream(want, testutil::capture(p, 192));
    }
    EXPECT_GT(tested.size(), 3u);
}

} // namespace
} // namespace macross::tuner
