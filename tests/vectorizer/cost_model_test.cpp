/**
 * @file
 * Unit tests for the static cost model and boundary-mode selection.
 */
#include "vectorizer/cost_model.h"

#include <gtest/gtest.h>

#include "benchmarks/common.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using namespace ir;

FilterDefPtr
simpleActor(int pop, int push, int computeOps)
{
    FilterBuilder f("a", kFloat32, kFloat32);
    f.rates(pop, pop, push);
    auto buf = f.local("buf", kFloat32, pop);
    auto i = f.local("i", kInt32);
    auto x = f.local("x", kFloat32);
    f.work().forLoop(i, 0, pop, [&](BlockBuilder& b) {
        b.store(buf, varRef(i), f.pop());
    });
    f.work().assign(x, load(buf, intImm(0)));
    for (int k = 0; k < computeOps; ++k)
        f.work().assign(x, varRef(x) * floatImm(1.01f));
    for (int j = 0; j < push; ++j)
        f.work().push(varRef(x) + load(buf, intImm(j % pop)));
    return f.build();
}

TEST(CostModel, ScalarEstimateGrowsWithWork)
{
    machine::MachineDesc m = machine::coreI7();
    double light = estimateFiringCycles(*simpleActor(2, 2, 1), m);
    double heavy = estimateFiringCycles(*simpleActor(2, 2, 50), m);
    EXPECT_GT(heavy, light + 40.0);
}

TEST(CostModel, SimdizationProfitableForComputeHeavyActors)
{
    machine::MachineDesc m = machine::coreI7();
    EXPECT_TRUE(simdizationProfitable(*simpleActor(2, 2, 60), m));
}

TEST(CostModel, BoundaryModeRanking)
{
    machine::MachineDesc noSagu = machine::coreI7();
    machine::MachineDesc withSagu = machine::coreI7WithSagu();
    auto pow2 = simpleActor(8, 8, 4);
    auto odd = simpleActor(6, 6, 4);

    // Power-of-two rates: permuted beats strided.
    BoundaryModes m1 =
        chooseBoundaryModes(*pow2, noSagu, true, false, true, true);
    EXPECT_EQ(m1.in, TapeMode::PermutedVector);
    EXPECT_EQ(m1.out, TapeMode::PermutedVector);

    // Non-power-of-two: permuted illegal, no SAGU -> strided.
    BoundaryModes m2 =
        chooseBoundaryModes(*odd, noSagu, true, false, true, true);
    EXPECT_EQ(m2.in, TapeMode::StridedScalar);

    // SAGU hardware present: the free walk wins on any rate.
    BoundaryModes m3 =
        chooseBoundaryModes(*odd, withSagu, true, true, true, true);
    EXPECT_EQ(m3.in, TapeMode::SaguVector);
    EXPECT_EQ(m3.out, TapeMode::SaguVector);

    // SAGU in software (6-cycle walk) loses to strided access.
    BoundaryModes m4 =
        chooseBoundaryModes(*odd, noSagu, true, true, true, true);
    EXPECT_EQ(m4.in, TapeMode::StridedScalar);

    // SAGU requires a scalar neighbor.
    BoundaryModes m5 = chooseBoundaryModes(*odd, withSagu, true, true,
                                           false, false);
    EXPECT_EQ(m5.in, TapeMode::StridedScalar);
    EXPECT_EQ(m5.out, TapeMode::StridedScalar);
}

TEST(CostModel, PeekingActorNeverGetsVectorBoundary)
{
    machine::MachineDesc m = machine::coreI7WithSagu();
    FilterBuilder f("peeky", kFloat32, kFloat32);
    f.rates(8, 4, 4);
    auto i = f.local("i", kInt32);
    auto s = f.local("s", kFloat32);
    auto t = f.local("t", kFloat32);
    f.work().assign(s, floatImm(0.0f));
    f.work().forLoop(i, 0, 8, [&](BlockBuilder& b) {
        b.assign(s, varRef(s) + f.peek(varRef(i)));
    });
    f.work().forLoop(i, 0, 4, [&](BlockBuilder& b) {
        b.assign(t, f.pop());
        b.push(varRef(s) * varRef(t));
    });
    auto def = f.build();
    BoundaryModes bm =
        chooseBoundaryModes(*def, m, true, true, true, true);
    EXPECT_EQ(bm.in, TapeMode::StridedScalar);
}

TEST(CostModel, SimdizedEstimateBelowScalarTimesWidth)
{
    machine::MachineDesc m = machine::coreI7();
    auto a = simpleActor(4, 4, 20);
    double scalar4 = 4 * estimateFiringCycles(*a, m);
    double simd = estimateSimdizedCycles(
        *a, m, TapeMode::StridedScalar, TapeMode::StridedScalar);
    EXPECT_LT(simd, scalar4);
    // And a cheaper boundary should lower the estimate further.
    double perm = estimateSimdizedCycles(
        *a, m, TapeMode::PermutedVector, TapeMode::PermutedVector);
    EXPECT_LT(perm, simd);
}

} // namespace
} // namespace macross::vectorizer
