/**
 * @file
 * Unit tests for horizontal SIMDization (Section 3.3).
 */
#include "vectorizer/horizontal.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/common.h"
#include "ir/analysis.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using namespace ir;
using benchmarks::floatSink;
using benchmarks::floatSource;

/** The paper's Figure 6a actor B with a per-branch divisor. */
FilterDefPtr
actorB(const std::string& name, float divisor)
{
    FilterBuilder f(name, kFloat32, kFloat32);
    f.rates(4, 4, 1);
    auto a0 = f.local("a0", kFloat32);
    auto a1 = f.local("a1", kFloat32);
    auto a2 = f.local("a2", kFloat32);
    auto a3 = f.local("a3", kFloat32);
    f.work().assign(a0, f.pop());
    f.work().assign(a1, f.pop());
    f.work().assign(a2, f.pop());
    f.work().assign(a3, f.pop());
    f.work().push((varRef(a0) * varRef(a1) + varRef(a2) * varRef(a3)) /
                  floatImm(divisor));
    return f.build();
}

/** The paper's Figure 6a stateful shift register C. */
FilterDefPtr
actorC(const std::string& name)
{
    FilterBuilder f(name, kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto state = f.state("state", kFloat32, 31);
    auto ph = f.state("place_holder", kInt32);
    auto i = f.local("i", kInt32);
    f.init().assign(ph, intImm(0));
    f.init().forLoop(i, 0, 31, [&](BlockBuilder& b) {
        b.store(state, varRef(i), floatImm(0.0f));
    });
    f.work().push(load(state, varRef(ph)));
    f.work().store(state, varRef(ph), f.pop());
    f.work().assign(ph, (varRef(ph) + intImm(1)) % intImm(31));
    return f.build();
}

TEST(Horizontal, MergesDifferingConstantsIntoVectorLiterals)
{
    std::vector<FilterDefPtr> bs = {actorB("B0", 5), actorB("B1", 6),
                                    actorB("B2", 7), actorB("B3", 8)};
    MergeOutcome mo = mergeIsomorphic(bs);
    ASSERT_TRUE(mo.def) << mo.reason;
    EXPECT_EQ(mo.def->pop, 16);
    EXPECT_EQ(mo.def->push, 4);
    EXPECT_EQ(mo.def->vectorLanes, 4);
    EXPECT_FALSE(mo.def->isStateful());
    // A vector literal {5,6,7,8} must appear somewhere in the body.
    bool foundVecImm = false;
    forEachExpr(mo.def->work, [&](const Expr& e) {
        if (e.kind == ExprKind::VecImm && e.fvec.size() == 4 &&
            e.fvec[0] == 5.0f && e.fvec[3] == 8.0f) {
            foundVecImm = true;
        }
    });
    EXPECT_TRUE(foundVecImm);
}

TEST(Horizontal, StatefulMergeKeepsScalarIndex)
{
    // The paper's C_V: state becomes a vector array but the
    // place_holder index stays a scalar int.
    std::vector<FilterDefPtr> cs = {actorC("C0"), actorC("C1"),
                                    actorC("C2"), actorC("C3")};
    MergeOutcome mo = mergeIsomorphic(cs);
    ASSERT_TRUE(mo.def) << mo.reason;
    EXPECT_TRUE(mo.def->isStateful());
    bool sawVectorState = false, sawScalarIndex = false;
    for (const auto& sv : mo.def->stateVars) {
        if (sv->isArray() && sv->type.isVector())
            sawVectorState = true;
        if (!sv->isArray() && sv->type == kInt32)
            sawScalarIndex = true;
    }
    EXPECT_TRUE(sawVectorState);
    EXPECT_TRUE(sawScalarIndex);
}

TEST(Horizontal, NonIsomorphicRejected)
{
    auto different = [&]() {
        FilterBuilder f("x", kFloat32, kFloat32);
        f.rates(4, 4, 1);
        auto s = f.local("s", kFloat32);
        auto i = f.local("i", kInt32);
        f.work().assign(s, floatImm(0.0f));
        f.work().forLoop(i, 0, 4, [&](BlockBuilder& b) {
            b.assign(s, varRef(s) + f.pop());
        });
        f.work().push(varRef(s));
        return f.build();
    }();
    MergeOutcome mo = mergeIsomorphic(
        {actorB("B0", 5), actorB("B1", 6), actorB("B2", 7), different});
    EXPECT_FALSE(mo.def);
    EXPECT_NE(mo.reason.find("isomorphic"), std::string::npos);
}

TEST(Horizontal, DifferingControlConstantRejected)
{
    // Branches whose loop bounds differ cannot be merged.
    auto looper = [&](const std::string& n, int trips) {
        FilterBuilder f(n, kFloat32, kFloat32);
        f.rates(4, 4, 4);
        auto i = f.local("i", kInt32);
        auto acc = f.local("acc", kFloat32);
        f.work().assign(acc, floatImm(0.0f));
        f.work().forLoop(i, 0, trips, [&](BlockBuilder& b) {
            b.assign(acc, varRef(acc) + floatImm(1.0f));
        });
        auto j = f.local("j", kInt32);
        f.work().forLoop(j, 0, 4, [&](BlockBuilder& b) {
            b.push(f.pop() + varRef(acc));
        });
        return f.build();
    };
    MergeOutcome mo =
        mergeIsomorphic({looper("l0", 2), looper("l1", 2),
                         looper("l2", 2), looper("l3", 3)});
    EXPECT_FALSE(mo.def);
}

} // namespace
} // namespace macross::vectorizer
