/**
 * @file
 * Unit tests for the vector-marking analysis (Section 3.1).
 */
#include "vectorizer/marking.h"

#include <gtest/gtest.h>

#include "vectorizer/simdizable.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using namespace ir;

TEST(Marking, PopSeedsPropagateThroughDefs)
{
    FilterBuilder f("a", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto t = f.local("t", kFloat32);
    auto u = f.local("u", kFloat32);
    auto c = f.local("c", kFloat32);
    f.work().assign(t, f.pop());
    f.work().assign(c, floatImm(2.0f));  // constant chain: stays scalar
    f.work().assign(u, varRef(t) * varRef(c));
    f.work().push(varRef(u));
    auto def = f.build();
    MarkResult r = markVectorVars(*def);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.vectorVars.count(t.get()));
    EXPECT_TRUE(r.vectorVars.count(u.get()));
    EXPECT_FALSE(r.vectorVars.count(c.get()));
}

TEST(Marking, ReadOnlyStateStaysScalar)
{
    // The paper's coeff[] table: only the tape-derived values widen.
    FilterBuilder f("d", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto coeff = f.state("coeff", kFloat32, 4);
    auto i = f.local("i", kInt32);
    f.init().forLoop(i, 0, 4, [&](BlockBuilder& b) {
        b.store(coeff, varRef(i), floatImm(0.25f));
    });
    f.work().push(f.pop() * load(coeff, intImm(0)));
    auto def = f.build();
    MarkResult r = markVectorVars(*def);
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.vectorVars.count(coeff.get()));
}

TEST(Marking, LoopCountersStayScalar)
{
    FilterBuilder f("a", kFloat32, kFloat32);
    f.rates(2, 2, 2);
    auto i = f.local("i", kInt32);
    auto x = f.local("x", kFloat32);
    f.work().forLoop(i, 0, 2, [&](BlockBuilder& b) {
        b.assign(x, f.pop());
        b.push(varRef(x) + toFloat(varRef(i)));
    });
    auto def = f.build();
    MarkResult r = markVectorVars(*def);
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.vectorVars.count(i.get()));
    EXPECT_TRUE(r.vectorVars.count(x.get()));
}

TEST(Marking, TapeDependentIfRejected)
{
    FilterBuilder f("a", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    f.work().assign(x, f.pop());
    f.work().ifElse(varRef(x) > floatImm(0.0f),
                    [&](BlockBuilder& t) { t.push(varRef(x)); },
                    [&](BlockBuilder& e) {
                        e.push(-varRef(x));
                    });
    auto def = f.build();
    MarkResult r = markVectorVars(*def);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("if condition"), std::string::npos);
}

TEST(Marking, LaneSerialIfAcceptedWhenOptedIn)
{
    FilterBuilder f("clamp", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    auto y = f.local("y", kFloat32);
    f.work().assign(x, f.pop());
    f.work().assign(y, floatImm(0.0f));
    f.work().ifElse(varRef(x) > floatImm(1.0f),
                    [&](BlockBuilder& t) { t.assign(y, floatImm(1.0f)); },
                    [&](BlockBuilder& e) { e.assign(y, varRef(x)); });
    f.work().push(varRef(y));
    auto def = f.build();

    // Default: rejected (vertical/horizontal paths).
    EXPECT_FALSE(markVectorVars(*def).ok);

    // Opted in: accepted; the if is recorded and even the
    // constant-assigned variable is control-dependently marked.
    MarkResult r = markVectorVars(*def, {}, true);
    ASSERT_TRUE(r.ok) << r.reason;
    EXPECT_EQ(r.laneSerialIfs.size(), 1u);
    EXPECT_TRUE(r.vectorVars.count(y.get()));
}

TEST(Marking, LaneSerialIfWithTapeOpsStillRejected)
{
    FilterBuilder f("bad", kFloat32, kFloat32);
    f.rates(2, 2, 1);
    auto x = f.local("x", kFloat32);
    f.work().assign(x, f.pop());
    f.work().ifElse(varRef(x) > floatImm(0.0f),
                    [&](BlockBuilder& t) {
                        t.assign(x, varRef(x) + f.pop());
                    },
                    [&](BlockBuilder& e) {
                        e.assign(x, varRef(x) - f.pop());
                    });
    f.work().push(varRef(x));
    auto def = f.build();
    MarkResult r = markVectorVars(*def, {}, true);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("non-serializable"), std::string::npos);
}

TEST(Marking, TapeDependentSubscriptRejected)
{
    FilterBuilder f("a", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto table = f.state("table", kFloat32, 8);
    auto x = f.local("x", kFloat32);
    auto idx = f.local("idx", kInt32);
    f.work().assign(x, f.pop());
    f.work().assign(idx,
                    binary(BinaryOp::And, toInt(varRef(x)), intImm(7)));
    f.work().push(load(table, varRef(idx)));
    auto def = f.build();
    MarkResult r = markVectorVars(*def);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("subscript"), std::string::npos);
}

TEST(Marking, ExtraSeedsMarkConstantFedVars)
{
    FilterBuilder f("b", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto c = f.local("c", kFloat32);
    auto seedExpr = floatImm(5.0f);
    f.work().append([&] {
        BlockBuilder b;
        b.assign(c, seedExpr);
        return b.take()[0];
    }());
    f.work().push(f.pop() / varRef(c));
    auto def = f.build();

    std::unordered_set<const Expr*> seeds{seedExpr.get()};
    MarkResult r = markVectorVars(*def, seeds);
    ASSERT_TRUE(r.ok);
    EXPECT_TRUE(r.vectorVars.count(c.get()));
}

TEST(Simdizable, ClassifierVerdicts)
{
    // Stateful -> rejected.
    FilterBuilder sf("state", kFloat32, kFloat32);
    sf.rates(1, 1, 1);
    auto acc = sf.state("acc", kFloat32);
    sf.init().assign(acc, floatImm(0.0f));
    sf.work().assign(acc, varRef(acc) + sf.pop());
    sf.work().push(varRef(acc));
    EXPECT_FALSE(isSimdizable(*sf.build()).ok);

    // Clean stateless -> accepted.
    FilterBuilder ok("ok", kFloat32, kFloat32);
    ok.rates(1, 1, 1);
    ok.work().push(ok.pop() * floatImm(3.0f));
    EXPECT_TRUE(isSimdizable(*ok.build()).ok);
}

TEST(Simdizable, InteriorPeekerNotFusable)
{
    FilterBuilder f("peeky", kFloat32, kFloat32);
    f.rates(3, 1, 1);
    auto t = f.local("t", kFloat32);
    f.work().assign(t, f.peek(2));
    f.work().push(varRef(t) + f.pop());
    auto def = f.build();
    EXPECT_TRUE(isVerticallyFusable(*def, /*is_first=*/true).ok);
    EXPECT_FALSE(isVerticallyFusable(*def, /*is_first=*/false).ok);
}

} // namespace
} // namespace macross::vectorizer
