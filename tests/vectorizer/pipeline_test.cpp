/**
 * @file
 * Integration tests for the full macro-SIMDization pipeline
 * (Algorithm 1) on the paper's running example and assorted shapes.
 */
#include "vectorizer/pipeline.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/common.h"
#include "benchmarks/suite.h"

namespace macross::vectorizer {
namespace {

SimdizeOptions
defaultOpts()
{
    SimdizeOptions o;
    o.forceSimdize = true;
    return o;
}

TEST(Pipeline, RunningExampleTransformShape)
{
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());

    bool sawHorizontalSplit = false, sawHorizontalJoin = false;
    bool sawFusedDE = false, sawVectorG = false, sawScalarF = false;
    for (const auto& a : compiled.graph.actors) {
        if (a.kind == graph::ActorKind::Splitter && a.horizontal)
            sawHorizontalSplit = true;
        if (a.kind == graph::ActorKind::Joiner && a.horizontal)
            sawHorizontalJoin = true;
        if (a.isFilter()) {
            if (a.def->fusedFrom ==
                std::vector<std::string>{"D", "E"}) {
                sawFusedDE = true;
                // 3 D's and 2 E's per firing, SIMDized over 4 lanes.
                EXPECT_EQ(a.def->vectorLanes, 4);
                EXPECT_EQ(a.def->pop, 24);
                EXPECT_EQ(a.def->push, 32);
            }
            if (a.def->name == "G_v") {
                sawVectorG = true;
                EXPECT_EQ(a.def->vectorLanes, 4);
            }
            if (a.def->name == "F") {
                sawScalarF = true;
                EXPECT_EQ(a.def->vectorLanes, 1);
            }
        }
    }
    EXPECT_TRUE(sawHorizontalSplit);
    EXPECT_TRUE(sawHorizontalJoin);
    EXPECT_TRUE(sawFusedDE);
    EXPECT_TRUE(sawVectorG);
    EXPECT_TRUE(sawScalarF);
}

TEST(Pipeline, RunningExamplePreservesOutput)
{
    testutil::expectTransformPreservesOutput(
        benchmarks::makeRunningExample(), defaultOpts(), 512);
}

TEST(Pipeline, RunningExamplePreservesOutputWithSagu)
{
    SimdizeOptions o = defaultOpts();
    o.machine = machine::coreI7WithSagu();
    o.enableSagu = true;
    testutil::expectTransformPreservesOutput(
        benchmarks::makeRunningExample(), o, 512);
}

TEST(Pipeline, TransformsComposeIndependently)
{
    // Each transform alone must also preserve outputs.
    for (int mask = 0; mask < 8; ++mask) {
        SimdizeOptions o = defaultOpts();
        o.enableSingleActor = mask & 1;
        o.enableVertical = mask & 2;
        o.enableHorizontal = mask & 4;
        SCOPED_TRACE("mask=" + std::to_string(mask));
        testutil::expectTransformPreservesOutput(
            benchmarks::makeRunningExample(), o, 256);
    }
}

TEST(Pipeline, SchedulingInvariantHoldsAfterTransforms)
{
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());
    schedule::checkRateMatched(compiled.graph, compiled.schedule);
    // Vectorized actors' repetition counts shrink accordingly: the
    // steady state still moves the same number of elements.
}

TEST(Pipeline, Width8MachineWorks)
{
    SimdizeOptions o = defaultOpts();
    o.machine = machine::wide8();
    // 8-wide horizontal needs 8 branches; the running example has 4,
    // so horizontal is skipped, but vertical/single-actor still apply
    // and the output must be preserved.
    testutil::expectTransformPreservesOutput(
        benchmarks::makeRunningExample(), o, 256);
}

TEST(Pipeline, NormalizeFlattensNestedPipelines)
{
    using namespace graph;
    auto inner = pipeline({
        filterStream(benchmarks::gain("a", 1.0f)),
        filterStream(benchmarks::gain("b", 2.0f)),
    });
    auto outer = pipeline({
        filterStream(benchmarks::floatSource("s", 1)),
        inner,
        filterStream(benchmarks::floatSink("k", 1)),
    });
    auto norm = normalize(outer);
    EXPECT_EQ(norm->children.size(), 4u);
}

TEST(Pipeline, ReportsTypedDecisions)
{
    using report::TransformKind;
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());
    const report::CompilationReport& rep = compiled.report;
    EXPECT_FALSE(rep.decisions.empty());

    // The running example exercises all three transforms.
    EXPECT_GE(rep.countKind(TransformKind::Horizontal), 1);
    EXPECT_GE(rep.countKind(TransformKind::VerticalFusion), 1);
    EXPECT_GE(rep.countKind(TransformKind::SingleActor), 1);

    // D and E fuse; the fusion decision records the chain length.
    bool sawFusion = false;
    for (const auto& d : rep.decisions) {
        if (d.kind == TransformKind::VerticalFusion && d.accepted) {
            sawFusion = true;
            EXPECT_EQ(d.fusedActors, 2);
        }
    }
    EXPECT_TRUE(sawFusion);

    // F stays scalar with a stated reason (it is not SIMDizable even
    // under forceSimdize).
    const report::ActorDecision* f = rep.find("F");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->kind, TransformKind::LeftScalar);
    EXPECT_FALSE(f->accepted);
    EXPECT_FALSE(f->reason.empty());

    // Every single-actor decision carries the cost model's estimates
    // and concrete boundary modes.
    for (const auto& d : rep.decisions) {
        if (d.kind != TransformKind::SingleActor)
            continue;
        EXPECT_TRUE(d.accepted);
        EXPECT_EQ(d.lanes, 4);
        EXPECT_GT(d.cost.scalarCycles, 0.0);
        EXPECT_GT(d.cost.simdCycles, 0.0);
        EXPECT_FALSE(d.inMode == report::TapeAccess::None &&
                     d.outMode == report::TapeAccess::None);
    }
}

TEST(Pipeline, ReportLegacyStringsSurvive)
{
    // The toString() shim keeps the pre-report log vocabulary.
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());
    bool mentionsHorizontal = false, mentionsFusion = false;
    for (const auto& d : compiled.report.decisions) {
        std::string line = d.toString();
        if (line.find("horizontally") != std::string::npos)
            mentionsHorizontal = true;
        if (line.find("fused") != std::string::npos)
            mentionsFusion = true;
    }
    EXPECT_TRUE(mentionsHorizontal);
    EXPECT_TRUE(mentionsFusion);
}

TEST(Pipeline, ReportJsonRoundTrips)
{
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());
    json::Value j = compiled.report.toJson();
    const json::Value* decisions = j.find("decisions");
    ASSERT_NE(decisions, nullptr);
    EXPECT_EQ(decisions->size(), compiled.report.decisions.size());
    EXPECT_EQ(json::parse(j.dump()), j);
    EXPECT_EQ(json::parse(j.dump(2)), j);
}

TEST(Pipeline, TraceRecordsPassTimings)
{
    support::Trace trace;
    SimdizeOptions o = defaultOpts();
    o.trace = &trace;
    macroSimdize(benchmarks::makeRunningExample(), o);

    ASSERT_TRUE(trace.timers().count("vectorizer.macroSimdize"));
    EXPECT_TRUE(trace.timers().count("vectorizer.tape_opt"));
    EXPECT_TRUE(trace.timers().count("vectorizer.schedule"));
    EXPECT_EQ(trace.counters().at("vectorizer.compilations"), 1);
    EXPECT_GT(trace.counters().at("vectorizer.decisions"), 0);
    ASSERT_EQ(trace.events().size(), 1u);
    EXPECT_EQ(trace.events()[0].category, "vectorizer");
}

} // namespace
} // namespace macross::vectorizer
