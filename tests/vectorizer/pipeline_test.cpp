/**
 * @file
 * Integration tests for the full macro-SIMDization pipeline
 * (Algorithm 1) on the paper's running example and assorted shapes.
 */
#include "vectorizer/pipeline.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "benchmarks/common.h"
#include "benchmarks/suite.h"

namespace macross::vectorizer {
namespace {

SimdizeOptions
defaultOpts()
{
    SimdizeOptions o;
    o.forceSimdize = true;
    return o;
}

TEST(Pipeline, RunningExampleTransformShape)
{
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());

    bool sawHorizontalSplit = false, sawHorizontalJoin = false;
    bool sawFusedDE = false, sawVectorG = false, sawScalarF = false;
    for (const auto& a : compiled.graph.actors) {
        if (a.kind == graph::ActorKind::Splitter && a.horizontal)
            sawHorizontalSplit = true;
        if (a.kind == graph::ActorKind::Joiner && a.horizontal)
            sawHorizontalJoin = true;
        if (a.isFilter()) {
            if (a.def->fusedFrom ==
                std::vector<std::string>{"D", "E"}) {
                sawFusedDE = true;
                // 3 D's and 2 E's per firing, SIMDized over 4 lanes.
                EXPECT_EQ(a.def->vectorLanes, 4);
                EXPECT_EQ(a.def->pop, 24);
                EXPECT_EQ(a.def->push, 32);
            }
            if (a.def->name == "G_v") {
                sawVectorG = true;
                EXPECT_EQ(a.def->vectorLanes, 4);
            }
            if (a.def->name == "F") {
                sawScalarF = true;
                EXPECT_EQ(a.def->vectorLanes, 1);
            }
        }
    }
    EXPECT_TRUE(sawHorizontalSplit);
    EXPECT_TRUE(sawHorizontalJoin);
    EXPECT_TRUE(sawFusedDE);
    EXPECT_TRUE(sawVectorG);
    EXPECT_TRUE(sawScalarF);
}

TEST(Pipeline, RunningExamplePreservesOutput)
{
    testutil::expectTransformPreservesOutput(
        benchmarks::makeRunningExample(), defaultOpts(), 512);
}

TEST(Pipeline, RunningExamplePreservesOutputWithSagu)
{
    SimdizeOptions o = defaultOpts();
    o.machine = machine::coreI7WithSagu();
    o.enableSagu = true;
    testutil::expectTransformPreservesOutput(
        benchmarks::makeRunningExample(), o, 512);
}

TEST(Pipeline, TransformsComposeIndependently)
{
    // Each transform alone must also preserve outputs.
    for (int mask = 0; mask < 8; ++mask) {
        SimdizeOptions o = defaultOpts();
        o.enableSingleActor = mask & 1;
        o.enableVertical = mask & 2;
        o.enableHorizontal = mask & 4;
        SCOPED_TRACE("mask=" + std::to_string(mask));
        testutil::expectTransformPreservesOutput(
            benchmarks::makeRunningExample(), o, 256);
    }
}

TEST(Pipeline, SchedulingInvariantHoldsAfterTransforms)
{
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());
    schedule::checkRateMatched(compiled.graph, compiled.schedule);
    // Vectorized actors' repetition counts shrink accordingly: the
    // steady state still moves the same number of elements.
}

TEST(Pipeline, Width8MachineWorks)
{
    SimdizeOptions o = defaultOpts();
    o.machine = machine::wide8();
    // 8-wide horizontal needs 8 branches; the running example has 4,
    // so horizontal is skipped, but vertical/single-actor still apply
    // and the output must be preserved.
    testutil::expectTransformPreservesOutput(
        benchmarks::makeRunningExample(), o, 256);
}

TEST(Pipeline, NormalizeFlattensNestedPipelines)
{
    using namespace graph;
    auto inner = pipeline({
        filterStream(benchmarks::gain("a", 1.0f)),
        filterStream(benchmarks::gain("b", 2.0f)),
    });
    auto outer = pipeline({
        filterStream(benchmarks::floatSource("s", 1)),
        inner,
        filterStream(benchmarks::floatSink("k", 1)),
    });
    auto norm = normalize(outer);
    EXPECT_EQ(norm->children.size(), 4u);
}

TEST(Pipeline, ReportsActions)
{
    auto compiled =
        macroSimdize(benchmarks::makeRunningExample(), defaultOpts());
    EXPECT_FALSE(compiled.actions.empty());
    bool mentionsHorizontal = false, mentionsFusion = false;
    for (const auto& a : compiled.actions) {
        if (a.action.find("horizontally") != std::string::npos)
            mentionsHorizontal = true;
        if (a.action.find("fused") != std::string::npos)
            mentionsFusion = true;
    }
    EXPECT_TRUE(mentionsHorizontal);
    EXPECT_TRUE(mentionsFusion);
}

} // namespace
} // namespace macross::vectorizer
