/**
 * @file
 * Unit tests for the prepass constant folder.
 */
#include "vectorizer/prepass.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "benchmarks/common.h"
#include "benchmarks/suite.h"
#include "graph/isomorphism.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using namespace ir;

TEST(Prepass, FoldsLiteralArithmetic)
{
    ExprPtr e = foldExpr(intImm(3) * intImm(4) + intImm(2));
    ASSERT_EQ(e->kind, ExprKind::IntImm);
    EXPECT_EQ(e->ival, 14);

    ExprPtr f = foldExpr(floatImm(0.5f) * floatImm(4.0f));
    ASSERT_EQ(f->kind, ExprKind::FloatImm);
    EXPECT_FLOAT_EQ(f->fval, 2.0f);

    // Division by a zero literal is left alone (the executor's panic
    // location is preserved).
    ExprPtr g = foldExpr(intImm(1) / intImm(0));
    EXPECT_EQ(g->kind, ExprKind::Binary);
}

TEST(Prepass, FoldsIntrinsicsBitExactly)
{
    ExprPtr e = foldExpr(call(Intrinsic::Sqrt, {floatImm(2.0f)}));
    ASSERT_EQ(e->kind, ExprKind::FloatImm);
    EXPECT_EQ(e->fval, std::sqrt(2.0f));  // exact same float op

    ExprPtr c = foldExpr(toFloat(intImm(7)));
    ASSERT_EQ(c->kind, ExprKind::FloatImm);
    EXPECT_FLOAT_EQ(c->fval, 7.0f);
}

TEST(Prepass, NoValueDependentIdentityRules)
{
    // x*1 must NOT fold: it would break isomorphism between actors
    // that differ only in constants (one sibling has x*1, another
    // x*2).
    auto x = std::make_shared<Var>();
    x->name = "x";
    x->type = kFloat32;
    ExprPtr e = foldExpr(varRef(x) * floatImm(1.0f));
    EXPECT_EQ(e->kind, ExprKind::Binary);
}

TEST(Prepass, ConstantIfKeepsTakenBranch)
{
    FilterBuilder f("sel", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    f.work().assign(x, f.pop());
    f.work().ifElse(intImm(2) > intImm(1),
                    [&](BlockBuilder& t) { t.push(varRef(x)); },
                    [&](BlockBuilder& e) {
                        e.push(varRef(x) * floatImm(2.0f));
                    });
    auto folded = foldConstants(*f.build());
    // The if disappears; only the then-branch's push remains.
    ASSERT_EQ(folded->work.size(), 2u);
    EXPECT_EQ(folded->work[1]->kind, StmtKind::Push);
}

TEST(Prepass, DropsZeroTripComputeLoops)
{
    FilterBuilder f("z", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    auto i = f.local("i", kInt32);
    f.work().assign(x, f.pop());
    f.work().forLoop(i, 5, 5, [&](BlockBuilder& b) {
        b.assign(x, varRef(x) * floatImm(2.0f));
    });
    f.work().push(varRef(x));
    auto folded = foldConstants(*f.build());
    for (const auto& s : folded->work)
        EXPECT_NE(s->kind, StmtKind::For);
}

TEST(Prepass, PreservesIsomorphismAcrossConstants)
{
    auto make = [](const std::string& n, float k) {
        FilterBuilder f(n, kFloat32, kFloat32);
        f.rates(1, 1, 1);
        // Foldable subexpression with a differing constant.
        f.work().push(f.pop() * (floatImm(k) * floatImm(2.0f)) +
                      floatImm(3.0f - k));
        return foldConstants(*f.build());
    };
    auto a = make("a", 1.0f);
    auto b = make("b", 1.5f);
    EXPECT_TRUE(graph::compareIsomorphic({a.get(), b.get()}).ok);
}

TEST(Prepass, WholeProgramFoldingPreservesOutput)
{
    // The prepass runs inside both compile paths; this checks the
    // fold itself is semantics-preserving by comparing against a
    // hand-compiled graph without it.
    auto program = benchmarks::makeRunningExample();
    auto folded = prepassOptimize(program);
    auto a = vectorizer::compileScalar(program);
    // compileScalar folds internally, so fold twice == fold once.
    auto b = vectorizer::compileScalar(folded);
    testutil::expectSameStream(testutil::capture(a, 200),
                               testutil::capture(b, 200));
}

} // namespace
} // namespace macross::vectorizer
