/**
 * @file
 * Unit tests for segment identification (G_V runs and G_H split-join
 * eligibility).
 */
#include "vectorizer/segments.h"

#include <gtest/gtest.h>

#include "benchmarks/common.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using benchmarks::firFilter;
using benchmarks::floatSink;
using benchmarks::floatSource;
using benchmarks::gain;
using benchmarks::identity;

FilterDefPtr
statefulActor(const std::string& name)
{
    using namespace ir;
    FilterBuilder f(name, kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto acc = f.state("acc", kFloat32);
    f.init().assign(acc, floatImm(0.0f));
    f.work().assign(acc, varRef(acc) + f.pop());
    f.work().push(varRef(acc));
    return f.build();
}

TEST(Segments, MaximalRunsSplitByStatefulActors)
{
    std::vector<StreamPtr> children = {
        filterStream(floatSource("src", 2)),   // not fusable (source)
        filterStream(gain("a", 1.0f)),
        filterStream(gain("b", 2.0f)),
        filterStream(statefulActor("s")),      // breaks the run
        filterStream(gain("c", 3.0f)),
        filterStream(gain("d", 4.0f)),
        filterStream(gain("e", 5.0f)),
        filterStream(floatSink("snk", 1)),
    };
    auto runs = fusableRuns(children);
    ASSERT_EQ(runs.size(), 8u);
    EXPECT_EQ(runs[0], -1);
    EXPECT_EQ(runs[1], 0);
    EXPECT_EQ(runs[2], 0);
    EXPECT_EQ(runs[3], -1);
    EXPECT_EQ(runs[4], 1);
    EXPECT_EQ(runs[5], 1);
    EXPECT_EQ(runs[6], 1);
    EXPECT_EQ(runs[7], -1);
}

TEST(Segments, SingletonsAreNotRuns)
{
    std::vector<StreamPtr> children = {
        filterStream(gain("a", 1.0f)),
        filterStream(statefulActor("s")),
        filterStream(gain("b", 2.0f)),
    };
    auto runs = fusableRuns(children);
    EXPECT_EQ(runs, (std::vector<int>{-1, -1, -1}));
}

TEST(Segments, PeekerMayOnlyStartARun)
{
    std::vector<StreamPtr> children = {
        filterStream(firFilter("fir", 8, 1, 0.1f)),
        filterStream(gain("a", 1.0f)),
        filterStream(firFilter("fir2", 8, 1, 0.2f)),  // peeks: breaks
        filterStream(gain("b", 2.0f)),
    };
    auto runs = fusableRuns(children);
    EXPECT_EQ(runs[0], 0);
    EXPECT_EQ(runs[1], 0);
    EXPECT_EQ(runs[2], 1);  // starts the next run
    EXPECT_EQ(runs[3], 1);
}

StreamPtr
fourBranchSJ(bool sameLength)
{
    std::vector<StreamPtr> branches;
    for (int i = 0; i < 4; ++i) {
        if (!sameLength && i == 3) {
            branches.push_back(graph::pipeline(
                {filterStream(gain("g" + std::to_string(i), 1.0f)),
                 filterStream(identity("x"))}));
        } else {
            branches.push_back(
                filterStream(gain("g" + std::to_string(i), 1.0f + i)));
        }
    }
    return splitJoinRoundRobin({1, 1, 1, 1}, std::move(branches),
                               {1, 1, 1, 1});
}

TEST(Segments, SplitJoinEligibility)
{
    auto ok = splitJoinLevels(*fourBranchSJ(true), 4);
    EXPECT_TRUE(ok.eligible);
    ASSERT_EQ(ok.levels.size(), 1u);
    EXPECT_EQ(ok.levels[0].size(), 4u);

    auto wrongWidth = splitJoinLevels(*fourBranchSJ(true), 8);
    EXPECT_FALSE(wrongWidth.eligible);
    EXPECT_NE(wrongWidth.reason.find("branch count"),
              std::string::npos);

    auto raggedBranches = splitJoinLevels(*fourBranchSJ(false), 4);
    EXPECT_FALSE(raggedBranches.eligible);
}

TEST(Segments, NonUniformWeightsRejected)
{
    std::vector<StreamPtr> branches;
    for (int i = 0; i < 4; ++i)
        branches.push_back(filterStream(gain("g", 1.0f)));
    auto sj = splitJoinRoundRobin({1, 2, 1, 1}, std::move(branches),
                                  {1, 1, 1, 1});
    auto lv = splitJoinLevels(*sj, 4);
    EXPECT_FALSE(lv.eligible);
    EXPECT_NE(lv.reason.find("weights"), std::string::npos);
}

} // namespace
} // namespace macross::vectorizer
