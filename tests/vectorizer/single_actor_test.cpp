/**
 * @file
 * Unit tests for single-actor SIMDization: transformed rates, access
 * discipline, boundary modes, and bit-exact execution.
 */
#include "vectorizer/single_actor.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "../test_util.h"
#include "benchmarks/common.h"
#include "ir/analysis.h"
#include "ir/printer.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using namespace ir;
using benchmarks::floatSink;
using benchmarks::floatSource;

/** The paper's actor D (Figure 3a). */
FilterDefPtr
actorD()
{
    FilterBuilder f("D", kFloat32, kFloat32);
    f.rates(2, 2, 2);
    auto coeff = f.state("coeff", kFloat32, 2);
    f.init().store(coeff, intImm(0), floatImm(1.5f));
    f.init().store(coeff, intImm(1), floatImm(0.5f));
    auto i = f.local("i", kInt32);
    auto t = f.local("t", kFloat32);
    auto tmp = f.local("tmp", kFloat32, 2);
    f.work().forLoop(i, 0, 2, [&](BlockBuilder& b) {
        b.assign(t, f.pop());
        b.store(tmp, varRef(i), varRef(t) * load(coeff, varRef(i)));
    });
    f.work().push(load(tmp, intImm(0)) + load(tmp, intImm(1)));
    f.work().push(load(tmp, intImm(0)) - load(tmp, intImm(1)));
    return f.build();
}

TEST(SingleActor, RatesScaleBySimdWidth)
{
    auto d = actorD();
    SimdizeOutcome out = singleActorSimdize(*d, 4, {});
    EXPECT_EQ(out.def->pop, 8);
    EXPECT_EQ(out.def->push, 8);
    EXPECT_EQ(out.def->peek, 8);
    EXPECT_EQ(out.def->vectorLanes, 4);
    // The transformed body still rate-checks (validated on build),
    // and follows the strided discipline: advance_in(6) at the end.
    std::string text = printStmts(out.def->work);
    EXPECT_NE(text.find("advance_in(6);"), std::string::npos);
    EXPECT_NE(text.find("advance_out(6);"), std::string::npos);
    EXPECT_NE(text.find("peek(2)"), std::string::npos);
    EXPECT_NE(text.find("rpush("), std::string::npos);
}

TEST(SingleActor, NormalizeHoistsNestedReads)
{
    FilterBuilder f("nested", kFloat32, kFloat32);
    f.rates(2, 2, 1);
    f.work().push(f.pop() + f.pop() * floatImm(2.0f));
    auto def = f.build();
    auto norm = normalizeTapeReads(*def);
    // After normalization no Pop may appear nested inside another
    // expression; each is the full right-hand side of an assignment.
    bool allBare = true;
    forEachExpr(norm->work, [&](const Expr& e) {
        for (const auto& a : e.args) {
            if (a->kind == ExprKind::Pop)
                allBare = false;
        }
    });
    EXPECT_TRUE(allBare);
    validateFilter(*norm);
}

TEST(SingleActor, UnrollExpandsTapeLoops)
{
    FilterBuilder f("loopy", kFloat32, kFloat32);
    f.rates(4, 4, 4);
    auto i = f.local("i", kInt32);
    f.work().forLoop(i, 0, 4, [&](BlockBuilder& b) {
        b.push(f.pop() * toFloat(varRef(i)));
    });
    auto def = f.build();
    auto unrolled = unrollTapeLoops(def->work, 1000);
    ASSERT_TRUE(unrolled.has_value());
    ir::TapeCounts tc = countTapeAccesses(*unrolled);
    EXPECT_EQ(tc.pops, 4);
    EXPECT_EQ(tc.pushes, 4);
    // No loops with tape ops remain.
    bool loopWithTape = false;
    forEachStmt(*unrolled, [&](const Stmt& s) {
        if (s.kind == StmtKind::For &&
            countTapeAccesses(s.body).pops +
                    countTapeAccesses(s.body).pushes >
                0) {
            loopWithTape = true;
        }
    });
    EXPECT_FALSE(loopWithTape);
}

TEST(SingleActor, UnrollRejectsTapeOpsUnderIf)
{
    FilterBuilder f("iffy", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto k = f.local("k", kInt32);
    f.work().assign(k, intImm(1));
    f.work().ifElse(varRef(k) > intImm(0),
                    [&](BlockBuilder& t) { t.push(f.pop()); },
                    [&](BlockBuilder& e) { e.push(f.pop()); });
    auto def = f.build();
    EXPECT_FALSE(unrollTapeLoops(def->work, 1000).has_value());
}

/** Wrap one actor with a source/sink and check output preservation. */
void
expectActorPreserved(const FilterDefPtr& def, BoundaryModes modes,
                     TapeMode expectIn, TapeMode expectOut)
{
    SimdizeOutcome out = singleActorSimdize(*def, 4, modes);
    EXPECT_EQ(out.inMode, expectIn) << out.note;
    EXPECT_EQ(out.outMode, expectOut) << out.note;

    auto program = [&](FilterDefPtr actor) {
        return graph::pipeline({
            graph::filterStream(floatSource("src", 4, 17)),
            graph::filterStream(actor),
            graph::filterStream(floatSink("snk", 1)),
        });
    };
    auto scalar = vectorizer::compileScalar(program(def));
    auto simd = vectorizer::compileScalar(program(out.def));
    testutil::expectSameStream(testutil::capture(scalar, 128),
                               testutil::capture(simd, 128));
}

TEST(SingleActor, StridedModePreservesOutput)
{
    expectActorPreserved(actorD(), {}, TapeMode::StridedScalar,
                         TapeMode::StridedScalar);
}

TEST(SingleActor, PermutedModePreservesOutput)
{
    expectActorPreserved(
        actorD(),
        {TapeMode::PermutedVector, TapeMode::PermutedVector},
        TapeMode::PermutedVector, TapeMode::PermutedVector);
}

TEST(SingleActor, PermutedDowngradesOnNonPowerOfTwo)
{
    FilterBuilder f("odd", kFloat32, kFloat32);
    f.rates(3, 3, 3);
    auto i = f.local("i", kInt32);
    f.work().forLoop(i, 0, 3, [&](BlockBuilder& b) {
        b.push(f.pop() * floatImm(2.0f));
    });
    auto def = f.build();
    expectActorPreserved(
        def, {TapeMode::PermutedVector, TapeMode::PermutedVector},
        TapeMode::StridedScalar, TapeMode::StridedScalar);
}

TEST(SingleActor, PeekingActorUsesStridedPeeks)
{
    // peek 4 / pop 2 / push 8 (the paper's actor G shape).
    FilterBuilder f("G", kFloat32, kFloat32);
    f.rates(4, 2, 8);
    auto j = f.local("j", kInt32);
    auto t = f.local("t", kFloat32);
    f.work().forLoop(j, 0, 4, [&](BlockBuilder& b) {
        b.push(f.peek(varRef(j)) * floatImm(0.25f));
        b.push(f.peek(varRef(j)) + floatImm(1.0f));
    });
    f.work().assign(t, f.pop());
    f.work().assign(t, f.pop());
    auto def = f.build();
    SimdizeOutcome out = singleActorSimdize(*def, 4, {});
    EXPECT_EQ(out.def->pop, 8);
    EXPECT_EQ(out.def->peek, (4 - 1) * 2 + 4);
    expectActorPreserved(def, {}, TapeMode::StridedScalar,
                         TapeMode::StridedScalar);
}

TEST(SingleActor, Width8AlsoPreservesOutput)
{
    auto def = actorD();
    SimdizeOutcome out = singleActorSimdize(*def, 8, {});
    EXPECT_EQ(out.def->pop, 16);
    auto program = [&](FilterDefPtr actor) {
        return graph::pipeline({
            graph::filterStream(floatSource("src", 4, 19)),
            graph::filterStream(actor),
            graph::filterStream(floatSink("snk", 1)),
        });
    };
    testutil::expectSameStream(
        testutil::capture(vectorizer::compileScalar(program(def)), 96),
        testutil::capture(vectorizer::compileScalar(program(out.def)),
                          96));
}

TEST(SingleActor, LaneSerialIfPreservesOutput)
{
    // Data-dependent clamp: if (x > 1) x = 1; else x = x * 0.5 —
    // SIMDized via per-lane emission (Section 3.1 scalar-mode switch).
    FilterBuilder f("Clamp", kFloat32, kFloat32);
    f.rates(2, 2, 2);
    auto x = f.local("x", kFloat32);
    auto i = f.local("i", kInt32);
    f.work().forLoop(i, 0, 2, [&](BlockBuilder& b) {
        b.assign(x, f.pop());
        b.ifElse(varRef(x) > floatImm(1.0f),
                 [&](BlockBuilder& t) {
                     t.assign(x, floatImm(1.0f));
                 },
                 [&](BlockBuilder& e) {
                     e.assign(x, varRef(x) * floatImm(0.5f));
                 });
        b.push(varRef(x));
    });
    auto def = f.build();
    expectActorPreserved(def, {}, TapeMode::StridedScalar,
                         TapeMode::StridedScalar);
}

TEST(SingleActor, LaneSerialIfWithArrayStores)
{
    FilterBuilder f("Hist", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto x = f.local("x", kFloat32);
    auto buf = f.local("buf", kFloat32, 2);
    f.work().assign(x, f.pop());
    f.work().store(buf, intImm(0), floatImm(0.0f));
    f.work().store(buf, intImm(1), floatImm(0.0f));
    f.work().ifElse(varRef(x) > floatImm(1.0f),
                    [&](BlockBuilder& t) {
                        t.store(buf, intImm(0), varRef(x));
                    },
                    [&](BlockBuilder& e) {
                        e.store(buf, intImm(1), varRef(x));
                    });
    f.work().push(load(buf, intImm(0)) - load(buf, intImm(1)));
    auto def = f.build();
    expectActorPreserved(def, {}, TapeMode::StridedScalar,
                         TapeMode::StridedScalar);
}

TEST(SingleActor, RejectsNonSimdizable)
{
    FilterBuilder f("stateful", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto acc = f.state("acc", kFloat32);
    f.init().assign(acc, floatImm(0.0f));
    f.work().assign(acc, varRef(acc) + f.pop());
    f.work().push(varRef(acc));
    auto def = f.build();
    EXPECT_THROW(singleActorSimdize(*def, 4, {}), FatalError);
}

} // namespace
} // namespace macross::vectorizer
