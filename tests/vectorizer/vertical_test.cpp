/**
 * @file
 * Unit tests for vertical fusion (Section 3.2).
 */
#include "vectorizer/vertical.h"

#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "../test_util.h"
#include "benchmarks/common.h"
#include "ir/analysis.h"
#include "vectorizer/single_actor.h"

namespace macross::vectorizer {
namespace {

using namespace graph;
using namespace ir;
using benchmarks::floatSink;
using benchmarks::floatSource;

FilterDefPtr
rateActor(const std::string& name, int pop, int push, float k)
{
    FilterBuilder f(name, kFloat32, kFloat32);
    f.rates(pop, pop, push);
    auto buf = f.local("buf", kFloat32, pop);
    auto i = f.local("i", kInt32);
    f.work().forLoop(i, 0, pop, [&](BlockBuilder& b) {
        b.store(buf, varRef(i), f.pop());
    });
    for (int j = 0; j < push; ++j) {
        f.work().push(load(buf, intImm(j % pop)) * floatImm(k) +
                      floatImm(0.125f * j));
    }
    return f.build();
}

TEST(Vertical, InnerRepetitionsMatchPaper)
{
    // D (push 2) feeding E (pop 3) -> 3 D's and 2 E's (the paper's
    // 3D_2E coarse actor).
    auto d = rateActor("D", 2, 2, 1.0f);
    auto e = rateActor("E", 3, 4, 2.0f);
    auto reps = innerRepetitions({d, e});
    EXPECT_EQ(reps, (std::vector<std::int64_t>{3, 2}));

    auto fused = fuseVertically({d, e});
    EXPECT_EQ(fused->name, "3D_2E");
    EXPECT_EQ(fused->pop, 6);
    EXPECT_EQ(fused->push, 8);
    EXPECT_FALSE(fused->isStateful());
    EXPECT_EQ(fused->fusedFrom,
              (std::vector<std::string>{"D", "E"}));
}

TEST(Vertical, MatchedRatesKeepRepetitionOne)
{
    auto a = rateActor("A", 4, 4, 1.0f);
    auto b = rateActor("B", 4, 4, 0.5f);
    auto reps = innerRepetitions({a, b});
    EXPECT_EQ(reps, (std::vector<std::int64_t>{1, 1}));
}

void
expectFusionPreserved(std::vector<FilterDefPtr> chain, int srcPush)
{
    auto program = [&](std::vector<FilterDefPtr> actors) {
        std::vector<StreamPtr> stages;
        stages.push_back(filterStream(floatSource("src", srcPush, 29)));
        for (auto& a : actors)
            stages.push_back(filterStream(a));
        stages.push_back(filterStream(floatSink("snk", 1)));
        return pipeline(std::move(stages));
    };
    auto fused = fuseVertically(chain);
    auto scalar = vectorizer::compileScalar(program(chain));
    auto fusedP = vectorizer::compileScalar(program({fused}));
    testutil::expectSameStream(testutil::capture(scalar, 200),
                               testutil::capture(fusedP, 200));
}

TEST(Vertical, FusionAlonePreservesOutput)
{
    expectFusionPreserved({rateActor("D", 2, 2, 1.5f),
                           rateActor("E", 3, 4, 0.5f)},
                          4);
}

TEST(Vertical, DeepChainPreservesOutput)
{
    expectFusionPreserved({rateActor("p", 2, 6, 1.1f),
                           rateActor("q", 4, 2, 0.9f),
                           rateActor("r", 3, 5, 1.3f),
                           rateActor("s", 5, 1, 0.7f)},
                          6);
}

TEST(Vertical, FusedActorThenSimdizedPreservesOutput)
{
    auto d = rateActor("D", 2, 2, 1.5f);
    auto e = rateActor("E", 3, 4, 0.5f);
    auto fused = fuseVertically({d, e});
    SimdizeOutcome out = singleActorSimdize(*fused, 4, {});
    EXPECT_EQ(out.def->pop, 24);
    EXPECT_EQ(out.def->push, 32);

    auto program = [&](FilterDefPtr actor) {
        return pipeline({
            filterStream(floatSource("src", 4, 29)),
            filterStream(actor),
            filterStream(floatSink("snk", 1)),
        });
    };
    std::vector<StreamPtr> chainStages = {
        filterStream(floatSource("src", 4, 29)),
        filterStream(d),
        filterStream(e),
        filterStream(floatSink("snk", 1)),
    };
    auto scalar =
        vectorizer::compileScalar(pipeline(std::move(chainStages)));
    auto simd = vectorizer::compileScalar(program(out.def));
    testutil::expectSameStream(testutil::capture(scalar, 160),
                               testutil::capture(simd, 160));
}

TEST(Vertical, FusedSimdizedBodyUsesVectorInternalBuffers)
{
    // Figure 4b/5f-g: after vertical fusion + SIMDization, the
    // communication between inner D and E is vector traffic through
    // internal buffers — lane packing/unpacking survives only at the
    // coarse actor's own tape boundaries.
    auto d = rateActor("D", 2, 2, 1.0f);
    auto e = rateActor("E", 3, 4, 2.0f);
    auto fused = fuseVertically({d, e});
    SimdizeOutcome out = singleActorSimdize(*fused, 4, {});

    bool vectorBufferStore = false;
    ir::forEachStmt(out.def->work, [&](const ir::Stmt& s) {
        if (s.kind == ir::StmtKind::Store && s.a->type.isVector() &&
            s.var->name.find("_buf") != std::string::npos) {
            vectorBufferStore = true;
        }
    });
    EXPECT_TRUE(vectorBufferStore);

    bool vectorBufferLoad = false;
    ir::forEachExpr(out.def->work, [&](const ir::Expr& x) {
        if (x.kind == ir::ExprKind::Load && x.type.isVector() &&
            x.var->name.find("_buf") != std::string::npos) {
            vectorBufferLoad = true;
        }
    });
    EXPECT_TRUE(vectorBufferLoad);

    // Section 3.2's headline: fusing D and E "eliminates 24 unpacking
    // and 24 packing operations" per SIMDized coarse firing — verify
    // dynamically by counting lane moves with and without fusion over
    // the same amount of data.
    auto dynLaneOps = [&](std::vector<FilterDefPtr> actors) {
        std::vector<StreamPtr> stages;
        stages.push_back(filterStream(floatSource("src", 6, 29)));
        for (auto& a : actors)
            stages.push_back(filterStream(a));
        stages.push_back(filterStream(floatSink("snk", 8)));
        auto p = vectorizer::compileScalar(
            pipeline(std::move(stages)));
        machine::MachineDesc m = machine::coreI7();
        machine::CostSink cost(m);
        interp::Runner r(p.graph, p.schedule, &cost);
        r.runInit();
        r.runSteady(3);  // equal data: rates match across variants
        using machine::OpClass;
        return cost.classOps()[static_cast<int>(OpClass::LaneInsert)] +
               cost.classOps()[static_cast<int>(
                   OpClass::LaneExtract)];
    };
    auto dv = singleActorSimdize(*d, 4, {});
    auto ev = singleActorSimdize(*e, 4, {});
    std::int64_t separate = dynLaneOps({dv.def, ev.def});
    std::int64_t fusedOps = dynLaneOps({out.def});
    // Per coarse firing the interior 24 packing + 24 unpacking lane
    // moves disappear (one coarse firing per steady iteration here,
    // and the run covers 3 iterations).
    EXPECT_LT(fusedOps, separate);
    EXPECT_EQ(separate - fusedOps, 48 * 3);
}

TEST(Vertical, PeekingFirstActorAllowed)
{
    auto fir = benchmarks::firFilter("fir", 8, 2, 0.2f);
    auto b = rateActor("B", 1, 1, 2.0f);
    auto fused = fuseVertically({fir, b});
    EXPECT_EQ(fused->pop, 2);
    EXPECT_EQ(fused->peek, 2 + 6);  // (r0-1)*pop + peek = 0*2+8
    expectFusionPreserved({fir, b}, 4);
}

TEST(Vertical, StatefulMemberRejected)
{
    FilterBuilder f("acc", kFloat32, kFloat32);
    f.rates(1, 1, 1);
    auto acc = f.state("acc", kFloat32);
    f.init().assign(acc, floatImm(0.0f));
    f.work().assign(acc, varRef(acc) + f.pop());
    f.work().push(varRef(acc));
    auto stateful = f.build();
    EXPECT_THROW(fuseVertically({rateActor("a", 1, 1, 1.0f), stateful}),
                 FatalError);
}

} // namespace
} // namespace macross::vectorizer
