/**
 * @file
 * `macross` — command-line driver for the library.
 *
 * Compile a stream program (a .str source file or a built-in
 * benchmark), optionally macro-SIMDize it, run it in the interpreter
 * with the performance model, and emit reports or artifacts:
 *
 *     macross prog.str --simd --run 20 --report
 *     macross --bench FMRadio --simd --sagu --dot graph.dot
 *     macross --bench DCT --simd --emit dct.cpp
 *     macross prog.str --scalar --autovec icc --run 10
 *
 * Options:
 *   <file.str>          parse a stream-language source file
 *   --bench NAME        use a built-in benchmark (see --list)
 *   --list              list built-in benchmarks
 *   --simd / --scalar   macro-SIMDize (default) or keep scalar
 *   --width N           SIMD lanes (default 4)
 *   --sagu              enable the SAGU tape layout (implies the
 *                       machine has the unit)
 *   --no-vertical / --no-horizontal / --no-permute
 *                       disable individual transforms
 *   --force             skip the profitability cost model
 *   --autovec gcc|icc   apply a modeled auto-vectorizer (scalar code)
 *   --run N             run N steady-state iterations (default 10)
 *   --report            per-op-class cycle breakdown
 *   --emit FILE         write generated C++ to FILE
 *   --dot FILE          write a Graphviz rendering to FILE
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "autovec/gcc_like.h"
#include "autovec/icc_like.h"
#include "benchmarks/suite.h"
#include "codegen/emit_cpp.h"
#include "frontend/parser.h"
#include "graph/dot.h"
#include "interp/runner.h"
#include "lowering/lowered.h"
#include "vectorizer/pipeline.h"

using namespace macross;

namespace {

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s (<file.str> | --bench NAME | --list) "
                 "[options]\n(see the header of tools/macross_cli.cpp "
                 "for the option list)\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    std::string sourceFile, benchName, emitFile, dotFile, autovecName;
    bool simd = true, sagu = false, force = false, report = false;
    bool vertical = true, horizontal = true, permute = true;
    int width = 4, iters = 10;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--list") {
            std::printf("RunningExample\n");
            for (const auto& b : benchmarks::standardSuite())
                std::printf("%s\n", b.name.c_str());
            return 0;
        } else if (a == "--bench") {
            benchName = value();
        } else if (a == "--simd") {
            simd = true;
        } else if (a == "--scalar") {
            simd = false;
        } else if (a == "--width") {
            width = std::stoi(value());
        } else if (a == "--sagu") {
            sagu = true;
        } else if (a == "--no-vertical") {
            vertical = false;
        } else if (a == "--no-horizontal") {
            horizontal = false;
        } else if (a == "--no-permute") {
            permute = false;
        } else if (a == "--force") {
            force = true;
        } else if (a == "--autovec") {
            autovecName = value();
        } else if (a == "--run") {
            iters = std::stoi(value());
        } else if (a == "--report") {
            report = true;
        } else if (a == "--emit") {
            emitFile = value();
        } else if (a == "--dot") {
            dotFile = value();
        } else if (!a.empty() && a[0] != '-') {
            sourceFile = a;
        } else {
            return usage(argv[0]);
        }
    }
    if (sourceFile.empty() == benchName.empty())
        return usage(argv[0]);

    try {
        graph::StreamPtr program =
            !sourceFile.empty()
                ? frontend::parseProgramFile(sourceFile)
                : benchmarks::benchmarkByName(benchName);

        vectorizer::SimdizeOptions opts;
        opts.machine = sagu ? machine::coreI7WithSagu()
                            : machine::coreI7();
        opts.machine.simdWidth = width;
        opts.enableSagu = sagu;
        opts.enableVertical = vertical;
        opts.enableHorizontal = horizontal;
        opts.enablePermutedTapes = permute;
        opts.forceSimdize = force;

        vectorizer::CompiledProgram compiled =
            simd ? vectorizer::macroSimdize(program, opts)
                 : vectorizer::compileScalar(program);

        for (const auto& act : compiled.actions) {
            std::printf("[simdize] %-16s %s\n", act.name.c_str(),
                        act.action.c_str());
        }

        if (!emitFile.empty()) {
            std::ofstream out(emitFile);
            out << codegen::emitCpp(compiled.graph, compiled.schedule);
            std::printf("wrote generated C++ to %s\n",
                        emitFile.c_str());
        }
        if (!dotFile.empty()) {
            std::ofstream out(dotFile);
            out << graph::toDot(compiled.graph, compiled.schedule);
            std::printf("wrote DOT graph to %s\n", dotFile.c_str());
        }

        machine::CostSink cost(opts.machine);
        interp::Runner r(compiled.graph, compiled.schedule, &cost);
        if (!autovecName.empty()) {
            auto lp =
                lowering::lower(compiled.graph, compiled.schedule);
            autovec::AutovecResult av =
                autovecName == "gcc"
                    ? autovec::gccAutovectorize(lp, opts.machine)
                    : autovec::iccAutovectorize(lp, opts.machine);
            for (auto& [id, cfg] : av.configs)
                r.setActorConfig(id, cfg);
            for (const auto& line : av.log)
                std::printf("[autovec] %s\n", line.c_str());
        }
        r.runInit();
        std::size_t before = r.captured().size();
        r.runSteady(iters);
        std::size_t produced = r.captured().size() - before;

        std::printf("\nran %d steady-state iterations on %s (%d-wide"
                    "%s)\n",
                    iters, opts.machine.name.c_str(), width,
                    simd ? ", macro-SIMDized" : ", scalar");
        std::printf("sink elements: %zu, modeled cycles: %.0f "
                    "(%.2f cycles/element)\n",
                    produced, cost.totalCycles(),
                    produced ? cost.totalCycles() / produced : 0.0);

        if (report) {
            std::printf("\nper-op-class breakdown:\n");
            for (int c = 0;
                 c < static_cast<int>(machine::OpClass::NumClasses);
                 ++c) {
                double cyc = cost.classCycles()[c];
                if (cyc <= 0)
                    continue;
                std::printf("  %-18s %12.0f cycles  (%5.1f%%), "
                            "%lld ops\n",
                            toString(static_cast<machine::OpClass>(c))
                                .c_str(),
                            cyc, 100.0 * cyc / cost.totalCycles(),
                            static_cast<long long>(
                                cost.classOps()[c]));
            }
            std::printf("\nper-actor cycles:\n");
            for (const auto& a : compiled.graph.actors) {
                std::printf("  %-22s %12.0f\n", a.name.c_str(),
                            cost.actorCycles(a.id));
            }
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
