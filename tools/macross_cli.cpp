/**
 * @file
 * `macross` — command-line driver for the library.
 *
 * Compile a stream program (a .str source file or a built-in
 * benchmark), optionally macro-SIMDize it, run it in the interpreter
 * with the performance model, and emit reports or artifacts:
 *
 *     macross prog.str --simd --run 20 --report
 *     macross --bench FMRadio --simd --json-report out.json --trace
 *     macross --bench DCT --simd --emit dct.cpp
 *     macross prog.str --scalar --autovec icc --run 10
 *
 * Run `macross --help` for the full option list (the table below is
 * the single source of truth).
 */
#include <algorithm>
#include <atomic>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autovec/gcc_like.h"
#include "autovec/icc_like.h"
#include "benchmarks/suite.h"
#include "codegen/emit_cpp.h"
#include "frontend/parser.h"
#include "graph/dot.h"
#include "interp/parallel_runner.h"
#include "interp/runner.h"
#include "lowering/lowered.h"
#include "machine/machine_desc.h"
#include "multicore/partition.h"
#include "native/native_fault.h"
#include "native/simd_probe.h"
#include "support/diagnostics.h"
#include "support/fault.h"
#include "support/json.h"
#include "support/trace.h"
#include "support/ulp.h"
#include "tuner/tuner.h"
#include "vectorizer/compile_service.h"
#include "vectorizer/pipeline.h"

using namespace macross;

namespace {

/** Everything the option table parses into. */
struct CliConfig {
    std::string sourceFile;
    std::string benchName;
    std::string emitFile;
    std::string dotFile;
    std::string autovecName;
    std::string engineName = "bytecode";
    std::string degradeName = "off";
    std::string jsonReportFile;
    bool list = false;
    bool help = false;
    bool simd = true;
    bool sagu = false;
    bool force = false;
    bool report = false;
    bool trace = false;
    bool vertical = true;
    bool horizontal = true;
    bool permute = true;
    int width = 4;
    bool widthSet = false;  ///< --width given (else machine default).
    int iters = 10;
    int emitPrint = 32;
    int threads = 1;
    int watchdogMs = 0;
    int nativeSimd = 0;  ///< 0 = SimdSpec default.
    int ulpTol = -1;     ///< -1 = no cross-check.
    std::string injectFault;
    std::string machineName = "nehalem";
    std::string nativeIsa;  ///< Empty = SimdSpec default (native).
    int batchIters = 0;     ///< 0 = ParallelOptions default.
    int ringCap = 0;        ///< 0 = ParallelOptions default.
    bool autotune = false;
    bool tuned = false;
    int tuneBudget = 0;     ///< 0 = TunerOptions default.
};

/** One entry of the declarative option table. */
struct OptSpec {
    const char* flag;     ///< e.g. "--bench".
    const char* operand;  ///< Metavariable, or null for plain flags.
    const char* help;
    /// Applies the parsed value; false rejects it as malformed.
    std::function<bool(CliConfig&, const std::string&)> apply;
};

const std::vector<OptSpec>&
optionTable()
{
    auto flag = [](bool CliConfig::* member, bool value) {
        return [member, value](CliConfig& c, const std::string&) {
            c.*member = value;
            return true;
        };
    };
    auto string = [](std::string CliConfig::* member) {
        return [member](CliConfig& c, const std::string& v) {
            c.*member = v;
            return true;
        };
    };
    auto integer = [](int CliConfig::* member) {
        return [member](CliConfig& c, const std::string& v) {
            int n = 0;
            auto [p, ec] = std::from_chars(
                v.data(), v.data() + v.size(), n);
            if (ec != std::errc() || p != v.data() + v.size() ||
                n <= 0)
                return false;
            c.*member = n;
            return true;
        };
    };
    static const std::vector<OptSpec> table = {
        {"--help", nullptr, "show this help and exit",
         flag(&CliConfig::help, true)},
        {"--list", nullptr, "list built-in benchmarks and exit",
         flag(&CliConfig::list, true)},
        {"--bench", "NAME", "use a built-in benchmark (see --list)",
         string(&CliConfig::benchName)},
        {"--simd", nullptr, "macro-SIMDize (default)",
         flag(&CliConfig::simd, true)},
        {"--scalar", nullptr, "compile scalar (no SIMDization)",
         flag(&CliConfig::simd, false)},
        {"--width", "N",
         "SIMD lanes SW for the vectorizer (default: the machine's "
         "natural width)",
         [](CliConfig& c, const std::string& v) {
             int n = 0;
             auto [p, ec] =
                 std::from_chars(v.data(), v.data() + v.size(), n);
             if (ec != std::errc() || p != v.data() + v.size() ||
                 n <= 0)
                 return false;
             c.width = n;
             c.widthSet = true;
             return true;
         }},
        {"--machine", "nehalem|wide8|wide16",
         "machine description: cycle tables and natural SIMD width "
         "SW (default nehalem, SW=4; wide8/wide16 model the paper's "
         "hypothetical wider units)",
         [](CliConfig& c, const std::string& v) {
             const auto& names = machine::machineNames();
             if (std::find(names.begin(), names.end(), v) ==
                 names.end())
                 return false;
             c.machineName = v;
             return true;
         }},
        {"--sagu", nullptr,
         "enable the SAGU tape layout (implies the unit)",
         flag(&CliConfig::sagu, true)},
        {"--no-vertical", nullptr, "disable vertical fusion",
         flag(&CliConfig::vertical, false)},
        {"--no-horizontal", nullptr,
         "disable horizontal SIMDization",
         flag(&CliConfig::horizontal, false)},
        {"--no-permute", nullptr,
         "disable permutation-based tape accesses",
         flag(&CliConfig::permute, false)},
        {"--force", nullptr, "skip the profitability cost model",
         flag(&CliConfig::force, true)},
        {"--autovec", "gcc|icc",
         "apply a modeled auto-vectorizer (scalar code)",
         string(&CliConfig::autovecName)},
        {"--engine", "tree|bytecode|native",
         "execution engine (default bytecode); native compiles the "
         "emitted C++ with the host compiler and runs it",
         [](CliConfig& c, const std::string& v) {
             if (v != "tree" && v != "bytecode" && v != "native")
                 return false;
             c.engineName = v;
             return true;
         }},
        {"--degrade", "off|auto|always",
         "native-engine fault policy: off propagates the typed fault "
         "(exit 4), auto replays on the next engine down with bitwise "
         "prefix verification and continues, always additionally "
         "shadows healthy batches with the bytecode VM (default off; "
         "requires --engine native)",
         [](CliConfig& c, const std::string& v) {
             if (v != "off" && v != "auto" && v != "always")
                 return false;
             c.degradeName = v;
             return true;
         }},
        {"--native-simd", "W",
         "native engine: emitted SIMD lane width — 1 is the scalar "
         "fallback layer, 4/8/16 the vector layer (default 4; "
         "validated against what this host can execute)",
         integer(&CliConfig::nativeSimd)},
        {"--native-isa", "NAME",
         "native engine: explicit -march level (e.g. x86-64-v3) "
         "instead of the default -march=native",
         [](CliConfig& c, const std::string& v) {
             if (v.empty())
                 return false;
             for (char ch : v) {
                 bool ok = (ch >= 'a' && ch <= 'z') ||
                           (ch >= 'A' && ch <= 'Z') ||
                           (ch >= '0' && ch <= '9') || ch == '-' ||
                           ch == '_' || ch == '.';
                 if (!ok)
                     return false;
             }
             c.nativeIsa = v;
             return true;
         }},
        {"--ulp-tol", "N",
         "native engine: cross-check the captured stream against the "
         "bytecode VM within N ULPs after the run; N > 0 also opts "
         "the emitted object into ULP-bounded divergence (0 demands "
         "bit-identity)",
         [](CliConfig& c, const std::string& v) {
             int n = 0;
             auto [p, ec] =
                 std::from_chars(v.data(), v.data() + v.size(), n);
             if (ec != std::errc() ||
                 p != v.data() + v.size() || n < 0)
                 return false;
             c.ulpTol = n;
             return true;
         }},
        {"--run", "N", "steady-state iterations (default 10)",
         integer(&CliConfig::iters)},
        {"--threads", "N",
         "execute the steady state on N worker threads over a greedy "
         "multicore partition (default 1); with --engine native each "
         "worker runs its core's emitted sub-program over SPSC rings",
         integer(&CliConfig::threads)},
        {"--batch-iters", "N",
         "parallel runs: steady iterations per worker handoff "
         "(default engine-chosen; requires --threads > 1)",
         integer(&CliConfig::batchIters)},
        {"--ring-cap", "N",
         "parallel runs: lower bound on SPSC ring slots per crossing "
         "tape (default engine-chosen; requires --threads > 1)",
         integer(&CliConfig::ringCap)},
        {"--autotune", nullptr,
         "search transform/execution configurations, measure the "
         "survivors on the native engine, run the winner, and persist "
         "it in the tuning cache (requires --engine native; overrides "
         "the transform flags above)",
         flag(&CliConfig::autotune, true)},
        {"--tuned", nullptr,
         "use the persisted --autotune winner for this program and "
         "host if one is cached; fall back to defaults otherwise "
         "(requires --engine native)",
         flag(&CliConfig::tuned, true)},
        {"--tune-budget", "N",
         "max configurations the tuner measures natively (default 8; "
         "requires --autotune)",
         integer(&CliConfig::tuneBudget)},
        {"--watchdog-ms", "MS",
         "parallel-run watchdog: detect a batch stalled for MS ms, "
         "shut the pool down, and fall back to the verified serial "
         "runner (default 0 = off)",
         integer(&CliConfig::watchdogMs)},
        {"--inject-fault", "KIND",
         "deliberately fault for testing: 'panic' (internal-bug "
         "path), 'worker-stall[:MS]' (stall one parallel worker), "
         "'native-crash[:PART]' (SIGSEGV inside emitted code, "
         "optionally only on partition PART), 'compile-timeout[:SKIP]' "
         "(wedge the host compile after SKIP healthy compiles), "
         "'dlopen-fail[:N]' (fail the next N cache loads), or "
         "'cache-quarantine' (treat the cache entry as twice-crashed)",
         string(&CliConfig::injectFault)},
        {"--report", nullptr,
         "print per-op-class and per-actor cycle breakdowns",
         flag(&CliConfig::report, true)},
        {"--trace", nullptr,
         "collect pass timers/counters/events; print a summary",
         flag(&CliConfig::trace, true)},
        {"--json-report", "FILE",
         "write compilation decisions, cost breakdowns, and run "
         "stats as JSON",
         string(&CliConfig::jsonReportFile)},
        {"--emit", "FILE",
         "write generated C++ to FILE (its main() defaults to the "
         "--run iteration count)",
         string(&CliConfig::emitFile)},
        {"--emit-print", "K",
         "sink elements echoed by the emitted main() (default 32)",
         integer(&CliConfig::emitPrint)},
        {"--dot", "FILE", "write a Graphviz rendering to FILE",
         string(&CliConfig::dotFile)},
    };
    return table;
}

void
printHelp(const char* argv0)
{
    std::printf("usage: %s (<file.str> | --bench NAME | --list) "
                "[options]\n\n"
                "Compile a stream program, optionally macro-SIMDize "
                "it, and run it\nunder the modeled machine.\n\n"
                "options:\n",
                argv0);
    for (const auto& opt : optionTable()) {
        std::string head = opt.flag;
        if (opt.operand) {
            head += ' ';
            head += opt.operand;
        }
        std::printf("  %-22s %s\n", head.c_str(), opt.help);
    }
}

int
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s (<file.str> | --bench NAME | --list) "
                 "[options]\nrun '%s --help' for the option list\n",
                 argv0, argv0);
    return 2;
}

/** Parse argv through the option table; exits on malformed input. */
bool
parseArgs(int argc, char** argv, CliConfig& cfg)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        // Both "--flag VALUE" and "--flag=VALUE" are accepted.
        std::string inlineValue;
        bool hasInline = false;
        if (a.rfind("--", 0) == 0) {
            auto eq = a.find('=');
            if (eq != std::string::npos) {
                inlineValue = a.substr(eq + 1);
                a = a.substr(0, eq);
                hasInline = true;
            }
        }
        const OptSpec* spec = nullptr;
        for (const auto& opt : optionTable()) {
            if (a == opt.flag) {
                spec = &opt;
                break;
            }
        }
        if (spec) {
            std::string value;
            if (spec->operand) {
                if (hasInline) {
                    value = inlineValue;
                } else if (i + 1 >= argc) {
                    std::fprintf(stderr, "%s needs a value (%s)\n",
                                 a.c_str(), spec->operand);
                    return false;
                } else {
                    value = argv[++i];
                }
            } else if (hasInline) {
                std::fprintf(stderr, "%s does not take a value\n",
                             a.c_str());
                return false;
            }
            if (!spec->apply(cfg, value)) {
                std::fprintf(stderr,
                             "%s: bad value '%s' (expected %s)\n",
                             a.c_str(), value.c_str(), spec->operand);
                return false;
            }
        } else if (!a.empty() && a[0] != '-') {
            cfg.sourceFile = a;
        } else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    CliConfig cfg;
    if (!parseArgs(argc, argv, cfg))
        return usage(argv[0]);
    if (cfg.help) {
        printHelp(argv[0]);
        return 0;
    }
    if (cfg.list) {
        std::printf("RunningExample\n");
        for (const auto& b : benchmarks::standardSuite())
            std::printf("%s\n", b.name.c_str());
        return 0;
    }
    if (cfg.sourceFile.empty() == cfg.benchName.empty())
        return usage(argv[0]);
    if (cfg.threads < 1) {
        std::fprintf(stderr, "--threads wants a positive count\n");
        return usage(argv[0]);
    }
    if (cfg.nativeSimd != 0) {
        // Plain-prose validation against the host probe: what was
        // asked, what the host supports, what to ask instead.
        if (!codegen::isValidLaneWidth(cfg.nativeSimd)) {
            std::fprintf(stderr,
                         "--native-simd %d: lane width must be 1, 2, "
                         "4, 8, or 16\n",
                         cfg.nativeSimd);
            return usage(argv[0]);
        }
        const int hostMax = native::probeMaxLaneWidth();
        if (cfg.nativeSimd > hostMax) {
            std::fprintf(stderr,
                         "--native-simd %d: this host (%s) can "
                         "execute at most %d lanes; pass %d or lower\n",
                         cfg.nativeSimd,
                         native::probeIsaName().c_str(), hostMax,
                         hostMax);
            return usage(argv[0]);
        }
    }
    if ((cfg.nativeSimd != 0 || cfg.ulpTol >= 0) &&
        cfg.engineName != "native") {
        std::fprintf(stderr, "%s only applies to --engine native\n",
                     cfg.nativeSimd != 0 ? "--native-simd"
                                         : "--ulp-tol");
        return usage(argv[0]);
    }
    if (!cfg.nativeIsa.empty() && cfg.engineName != "native") {
        std::fprintf(stderr,
                     "--native-isa only applies to --engine native\n");
        return usage(argv[0]);
    }
    if (cfg.degradeName != "off" && cfg.engineName != "native") {
        std::fprintf(stderr,
                     "--degrade governs the native engine's fault "
                     "policy; add --engine native\n");
        return usage(argv[0]);
    }
    if ((cfg.batchIters != 0 || cfg.ringCap != 0) &&
        cfg.threads <= 1) {
        std::fprintf(stderr,
                     "%s shapes the parallel runner; add --threads N "
                     "with N > 1\n",
                     cfg.batchIters != 0 ? "--batch-iters"
                                         : "--ring-cap");
        return usage(argv[0]);
    }
    if ((cfg.autotune || cfg.tuned) && cfg.engineName != "native") {
        std::fprintf(stderr,
                     "%s measures and runs the native engine; add "
                     "--engine native\n",
                     cfg.autotune ? "--autotune" : "--tuned");
        return usage(argv[0]);
    }
    if (cfg.tuneBudget != 0 && !cfg.autotune) {
        std::fprintf(stderr,
                     "--tune-budget only applies with --autotune\n");
        return usage(argv[0]);
    }

    try {
        // --inject-fault: deliberate failures for exercising the
        // CLI's error paths and the parallel watchdog end to end.
        if (!cfg.injectFault.empty()) {
            if (cfg.injectFault == "panic") {
                panic("deliberate panic requested via --inject-fault");
            } else if (cfg.injectFault.rfind("worker-stall", 0) == 0) {
                long stallMs = 200;
                auto colon = cfg.injectFault.find(':');
                if (colon != std::string::npos)
                    stallMs =
                        std::stol(cfg.injectFault.substr(colon + 1));
                support::FaultInjector::instance().arm(
                    "parallel.worker.batch",
                    [stallMs](std::int64_t*) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(stallMs));
                    },
                    1);
            } else if (cfg.injectFault.rfind("native-crash", 0) == 0) {
                long part = -1;
                auto colon = cfg.injectFault.find(':');
                if (colon != std::string::npos)
                    part =
                        std::stol(cfg.injectFault.substr(colon + 1));
                // Armed with unlimited fires so the site can be probed
                // by every partition/batch, but self-limited to one
                // real crash: the payload carries the partition id
                // (-1 for the serial whole-program path) and only a
                // matching fire raises. raise() delivers the SIGSEGV
                // on the firing thread, inside the signal guard.
                auto fired =
                    std::make_shared<std::atomic<bool>>(false);
                support::FaultInjector::instance().arm(
                    "native.steady.crash",
                    [part, fired](std::int64_t* value) {
                        if (part >= 0 && (!value || *value != part))
                            return;
                        if (fired->exchange(true))
                            return;
                        raise(SIGSEGV);
                    });
            } else if (cfg.injectFault.rfind("compile-timeout", 0) ==
                       0) {
                long skip = 0;
                auto colon = cfg.injectFault.find(':');
                if (colon != std::string::npos)
                    skip =
                        std::stol(cfg.injectFault.substr(colon + 1));
                // Wedge one host compile (after SKIP healthy ones)
                // and shrink its wall budget so the run fails fast.
                support::FaultInjector::instance().arm(
                    "native.compile.timeout",
                    [](std::int64_t* value) {
                        if (value)
                            *value = 300;
                    },
                    1, skip);
            } else if (cfg.injectFault.rfind("dlopen-fail", 0) == 0) {
                long n = 1;
                auto colon = cfg.injectFault.find(':');
                if (colon != std::string::npos)
                    n = std::stol(cfg.injectFault.substr(colon + 1));
                support::FaultInjector::instance().arm(
                    "native.dlopen.fail", [](std::int64_t*) {},
                    static_cast<int>(n));
            } else if (cfg.injectFault == "cache-quarantine") {
                support::FaultInjector::instance().arm(
                    "native.cache.quarantine",
                    [](std::int64_t* value) {
                        if (value)
                            *value = 2;
                    },
                    1);
            } else {
                fatal("unknown --inject-fault kind '", cfg.injectFault,
                      "' (want panic, worker-stall[:MS], "
                      "native-crash[:PART], compile-timeout[:SKIP], "
                      "dlopen-fail[:N], or cache-quarantine)");
            }
        }

        graph::StreamPtr program =
            !cfg.sourceFile.empty()
                ? frontend::parseProgramFile(cfg.sourceFile)
                : benchmarks::benchmarkByName(cfg.benchName);

        support::Trace trace;
        const bool wantTrace = cfg.trace || !cfg.jsonReportFile.empty();
        const std::string programName = !cfg.benchName.empty()
                                            ? cfg.benchName
                                            : cfg.sourceFile;

        // --autotune / --tuned: let the measurement-driven tuner (or
        // its persisted winner) choose the configuration; the
        // transform/width/thread flags above are overridden.
        tuner::TuneResult tuneResult;
        bool haveTune = false;
        if (cfg.autotune) {
            tuner::TunerOptions topt;
            if (cfg.tuneBudget > 0)
                topt.measureBudget = cfg.tuneBudget;
            if (wantTrace)
                topt.trace = &trace;
            tuner::Tuner t(program, programName, topt);
            tuneResult = t.tune();
            haveTune = true;
        } else if (cfg.tuned) {
            vectorizer::CompileService svc(program);
            if (auto entry = tuner::loadTunedConfig(svc)) {
                tuneResult.best = entry->config;
                tuneResult.bestMicrosPerElement =
                    entry->tunedMicrosPerElement;
                tuneResult.defaultMicrosPerElement =
                    entry->defaultMicrosPerElement;
                tuneResult.candidatesMeasured =
                    entry->candidatesMeasured;
                tuneResult.cacheHit = true;
                tuneResult.cachePath = tuner::TuneCache().pathFor(
                    svc.programHash(), native::hostFingerprint());
                haveTune = true;
            } else {
                std::printf("no tuned configuration cached for this "
                            "program on this host; running defaults "
                            "(use --autotune to search)\n");
            }
        }
        if (haveTune) {
            const tuner::TuneConfig& best = tuneResult.best;
            std::printf("auto-tune: %s (%s), %.3f us/element vs "
                        "default %.3f (%.2fx), %d candidate%s "
                        "measured%s\n",
                        best.key().c_str(),
                        tuneResult.cacheHit ? "cached" : "searched",
                        tuneResult.bestMicrosPerElement,
                        tuneResult.defaultMicrosPerElement,
                        tuneResult.speedupOverDefault(),
                        tuneResult.candidatesMeasured,
                        tuneResult.candidatesMeasured == 1 ? "" : "s",
                        tuneResult.cacheHit ? "" : " (cache updated)");
            cfg.simd = best.simd;
            cfg.sagu = best.sagu;
            cfg.vertical = best.vertical;
            cfg.horizontal = best.horizontal;
            cfg.permute = best.permute;
            cfg.machineName = best.machine;
            cfg.widthSet = false;
            cfg.threads = best.threads;
            cfg.nativeSimd = best.laneWidth;
            cfg.nativeIsa = best.isa == "auto" ? "" : best.isa;
            cfg.batchIters = best.batchIterations;
            cfg.ringCap = static_cast<int>(best.ringCapacity);
        }

        vectorizer::SimdizeOptions opts;
        opts.machine =
            machine::machineByName(cfg.machineName, cfg.sagu);
        if (cfg.widthSet)
            opts.machine.simdWidth = cfg.width;
        else
            cfg.width = opts.machine.simdWidth;
        opts.enableSagu = cfg.sagu;
        opts.enableVertical = cfg.vertical;
        opts.enableHorizontal = cfg.horizontal;
        opts.enablePermutedTapes = cfg.permute;
        opts.forceSimdize = cfg.force;
        if (wantTrace)
            opts.trace = &trace;

        vectorizer::CompiledProgram compiled =
            cfg.simd ? vectorizer::macroSimdize(program, opts)
                     : vectorizer::compileScalar(program);

        for (const auto& d : compiled.report.decisions) {
            std::printf("[simdize] %-16s %s\n", d.actor.c_str(),
                        d.toString().c_str());
        }

        if (!cfg.emitFile.empty()) {
            // The emitted main() mirrors this run: same default
            // iteration count, caller-chosen echo length.
            codegen::EmitOptions eo;
            eo.steadyIterations = cfg.iters;
            eo.printFirst = cfg.emitPrint;
            std::ofstream out(cfg.emitFile);
            out << codegen::emitCpp(compiled.graph, compiled.schedule,
                                    eo);
            std::printf("wrote generated C++ to %s\n",
                        cfg.emitFile.c_str());
        }
        if (!cfg.dotFile.empty()) {
            std::ofstream out(cfg.dotFile);
            out << graph::toDot(compiled.graph, compiled.schedule);
            std::printf("wrote DOT graph to %s\n",
                        cfg.dotFile.c_str());
        }

        machine::CostSink cost(opts.machine);
        interp::ExecEngine engine =
            cfg.engineName == "tree"     ? interp::ExecEngine::Tree
            : cfg.engineName == "native" ? interp::ExecEngine::Native
                                         : interp::ExecEngine::Bytecode;
        interp::EngineConfig econfig(engine);
        if (cfg.nativeSimd != 0) {
            econfig.simd.laneWidth = cfg.nativeSimd;
        } else if (engine == interp::ExecEngine::Native && cfg.simd) {
            // The emitted lane width follows the machine the
            // vectorizer planned against (wide8 plans 8-lane
            // segments, so emit 8 lanes), clipped to what this host
            // can execute rather than tripping the W=1 fallback. An
            // exotic --width the emitter has no lane type for keeps
            // the SimdSpec default.
            const int planned = std::min(
                opts.machine.simdWidth, native::probeMaxLaneWidth());
            if (codegen::isValidLaneWidth(planned))
                econfig.simd.laneWidth = planned;
        }
        if (!cfg.nativeIsa.empty())
            econfig.simd.isa = cfg.nativeIsa;
        econfig.simd.allowUlpDivergence = cfg.ulpTol > 0;
        econfig.batchIterations = cfg.batchIters;
        econfig.ringCapacity = cfg.ringCap;
        econfig.degrade =
            cfg.degradeName == "auto" ? interp::DegradeMode::Auto
            : cfg.degradeName == "always"
                ? interp::DegradeMode::Always
                : interp::DegradeMode::Off;
        interp::Runner r(compiled.graph, compiled.schedule, &cost,
                         econfig);
        if (wantTrace)
            r.setTrace(&trace);
        std::vector<std::pair<int, interp::ActorExecConfig>>
            actorConfigs;
        if (!cfg.autovecName.empty()) {
            auto lp =
                lowering::lower(compiled.graph, compiled.schedule);
            autovec::AutovecResult av =
                cfg.autovecName == "gcc"
                    ? autovec::gccAutovectorize(lp, opts.machine)
                    : autovec::iccAutovectorize(lp, opts.machine);
            for (auto& [id, c] : av.configs) {
                r.setActorConfig(id, c);
                actorConfigs.emplace_back(id, c);
            }
            for (const auto& line : av.log)
                std::printf("[autovec] %s\n", line.c_str());
        }
        r.runInit();
        std::size_t before = r.captured().size();
        auto wall0 = std::chrono::steady_clock::now();
        r.runSteady(cfg.iters);
        double serialWallMicros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - wall0)
                .count();
        std::size_t produced = r.captured().size() - before;

        std::printf("\nran %d steady-state iterations on %s (%d-wide"
                    "%s, %s engine)\n",
                    cfg.iters, opts.machine.name.c_str(), cfg.width,
                    cfg.simd ? ", macro-SIMDized" : ", scalar",
                    toString(engine).c_str());
        if (const native::NativeStats* ns = r.nativeStats()) {
            std::printf("sink elements: %zu, native wall: %.0f us "
                        "(%.1f ns/element)\n",
                        produced, ns->steadyWallMicros,
                        produced ? 1e3 * ns->steadyWallMicros /
                                       produced
                                 : 0.0);
            std::printf("native build: %s %s, %s (%s, compile "
                        "%.0f ms)\n",
                        ns->compiler.c_str(), ns->flags.c_str(),
                        ns->soPath.c_str(),
                        ns->cacheHit ? "cache hit" : "cache miss",
                        ns->compileMillis);
            std::printf("native simd: W=%d isa=%s%s%s (ABI v%d)\n",
                        ns->simdLanes, ns->simdIsa.c_str(),
                        ns->simdFallback ? ", scalar fallback" : "",
                        ns->exact ? "" : ", ULP-bounded",
                        ns->abiVersion);
        } else {
            std::printf("sink elements: %zu, modeled cycles: %.0f "
                        "(%.2f cycles/element)\n",
                        produced, cost.totalCycles(),
                        produced ? cost.totalCycles() / produced
                                 : 0.0);
        }
        for (const native::NativeFaultRecord& rec : r.nativeFaults())
            std::printf("native FAULT: %s in phase %s%s: %s\n",
                        toString(rec.kind).c_str(),
                        rec.phase.c_str(),
                        rec.signal ? (", " + rec.signalName).c_str()
                                   : "",
                        rec.message.c_str());
        if (r.degradedFromNative())
            std::printf("degraded to bytecode VM: prefix %s "
                        "(%lld elements verified)\n",
                        r.degradeVerified() ? "verified"
                                            : "UNVERIFIED",
                        static_cast<long long>(
                            r.verifiedElements()));

        // --ulp-tol N: differential cross-check of the native run
        // against the bytecode VM, tolerance counted in ULPs (N=0
        // demands bit-identity). The check is the CLI-level version
        // of the native differential test suite.
        if (cfg.ulpTol >= 0) {
            interp::Runner ref(
                compiled.graph, compiled.schedule, nullptr,
                interp::EngineConfig(interp::ExecEngine::Bytecode));
            ref.runInit();
            ref.runSteady(cfg.iters);
            const auto& got = r.captured();
            const auto& want = ref.captured();
            fatalIf(got.size() != want.size(),
                    "ULP cross-check: native captured ", got.size(),
                    " elements but the bytecode VM captured ",
                    want.size());
            std::int64_t worst = 0;
            for (std::size_t i = 0; i < got.size(); ++i) {
                for (int l = 0; l < got[i].lanes(); ++l) {
                    std::int64_t d =
                        got[i].type().isFloat()
                            ? support::ulpDistance(got[i].f(l),
                                                   want[i].f(l))
                            : (got[i].rawBits(l) != want[i].rawBits(l)
                                   ? std::numeric_limits<
                                         std::int64_t>::max()
                                   : 0);
                    if (d > worst)
                        worst = d;
                    fatalIf(d > cfg.ulpTol,
                            "ULP cross-check FAILED at element ", i,
                            " lane ", l, ": native ", got[i].str(),
                            " vs VM ", want[i].str(), " (", d,
                            " ULPs apart, tolerance ", cfg.ulpTol,
                            ")");
                }
            }
            std::printf("ULP cross-check vs bytecode VM: %zu "
                        "elements, worst distance %lld (tolerance "
                        "%d): OK\n",
                        got.size(), static_cast<long long>(worst),
                        cfg.ulpTol);
        }

        // --threads N: repeat the same steady iterations on a worker
        // pool over a greedy partition, with the serial run above as
        // the profiling source and the wall-clock baseline.
        std::unique_ptr<machine::CostSink> parCost;
        std::unique_ptr<interp::ParallelRunner> par;
        if (cfg.threads > 1) {
            std::vector<double> actorCycles(
                compiled.graph.actors.size(), 0.0);
            if (engine == interp::ExecEngine::Native) {
                // The native run measures wall clock and charges no
                // modeled cycles, so profile a few bytecode
                // iterations to give partitionGreedy real weights.
                machine::CostSink prof(opts.machine);
                interp::Runner profiler(
                    compiled.graph, compiled.schedule, &prof,
                    interp::EngineConfig(
                        interp::ExecEngine::Bytecode));
                for (auto& [id, c] : actorConfigs)
                    profiler.setActorConfig(id, c);
                profiler.enableCapture(false);
                profiler.runInit();
                profiler.runSteady(std::min(cfg.iters, 8));
                for (const auto& a : compiled.graph.actors)
                    actorCycles[a.id] = prof.actorCycles(a.id);
            } else {
                for (const auto& a : compiled.graph.actors)
                    actorCycles[a.id] = cost.actorCycles(a.id);
            }
            multicore::Partition part = multicore::partitionGreedy(
                compiled.graph, compiled.schedule, actorCycles,
                cfg.threads);

            parCost =
                std::make_unique<machine::CostSink>(opts.machine);
            interp::ParallelOptions popt;
            popt.watchdogMs = cfg.watchdogMs;
            par = std::make_unique<interp::ParallelRunner>(
                compiled.graph, compiled.schedule, part,
                parCost.get(), econfig, popt);
            for (auto& [id, c] : actorConfigs)
                par->setActorConfig(id, c);
            par->runInit();
            par->runSteady(cfg.iters);
            par->setBaselineWallMicros(serialWallMicros);

            bool identical =
                par->captured().size() == r.captured().size();
            for (std::size_t i = 0; identical &&
                                    i < par->captured().size();
                 ++i) {
                identical = par->captured()[i].rawBits(0) ==
                            r.captured()[i].rawBits(0);
            }
            std::printf("\nparallel run on %d threads:\n",
                        cfg.threads);
            for (int c = 0; c < part.cores; ++c) {
                std::printf("  core %d: %12.0f modeled cycles\n", c,
                            part.coreLoad[c]);
            }
            std::printf("  crossing words/iter: %lld, output %s, "
                        "measured speedup: %.2fx\n",
                        static_cast<long long>(part.commWords),
                        identical ? "bit-identical" : "MISMATCH",
                        par->steadyWallMicros() > 0.0
                            ? serialWallMicros /
                                  par->steadyWallMicros()
                            : 0.0);
            for (const auto& f : par->faults()) {
                std::printf("  FAULT %s (generation %lld): %s — "
                            "serial fallback %s\n",
                            f.kind.c_str(),
                            static_cast<long long>(f.generation),
                            f.message.c_str(),
                            f.fallbackVerified
                                ? "verified bit-identical"
                                : (f.fallbackUsed ? "used (unverified)"
                                                  : "not run"));
            }
            for (const native::NativeFaultRecord& rec :
                 par->nativeFaults())
                std::printf("  native FAULT: %s in phase %s "
                            "(partition %d, batch %lld)%s%s: %s\n",
                            toString(rec.kind).c_str(),
                            rec.phase.c_str(), rec.partition,
                            static_cast<long long>(rec.batchIndex),
                            rec.signal ? ", " : "",
                            rec.signal ? rec.signalName.c_str() : "",
                            rec.message.c_str());
        }

        if (cfg.report) {
            std::printf("\nper-op-class breakdown:\n");
            for (int c = 0;
                 c < static_cast<int>(machine::OpClass::NumClasses);
                 ++c) {
                double cyc = cost.classCycles()[c];
                if (cyc <= 0)
                    continue;
                std::printf("  %-18s %12.0f cycles  (%5.1f%%), "
                            "%lld ops\n",
                            toString(static_cast<machine::OpClass>(c))
                                .c_str(),
                            cyc, 100.0 * cyc / cost.totalCycles(),
                            static_cast<long long>(
                                cost.classOps()[c]));
            }
            std::printf("\nper-actor cycles:\n");
            for (const auto& a : compiled.graph.actors) {
                std::printf("  %-22s %12.0f\n", a.name.c_str(),
                            cost.actorCycles(a.id));
            }
        }

        if (cfg.trace) {
            std::printf("\ntrace timers:\n");
            for (const auto& [name, t] : trace.timers()) {
                std::printf("  %-28s %3lld calls %10.3f ms\n",
                            name.c_str(),
                            static_cast<long long>(t.calls),
                            t.totalMs);
            }
            std::printf("trace counters:\n");
            for (const auto& [name, v] : trace.counters()) {
                std::printf("  %-28s %lld\n", name.c_str(),
                            static_cast<long long>(v));
            }
        }

        if (!cfg.jsonReportFile.empty()) {
            std::vector<std::string> names;
            names.reserve(compiled.graph.actors.size());
            for (const auto& a : compiled.graph.actors)
                names.push_back(a.name);

            json::Value root = json::Value::object();
            root["program"] = !cfg.benchName.empty()
                                  ? cfg.benchName
                                  : cfg.sourceFile;
            root["mode"] = cfg.simd ? "macro-simd" : "scalar";
            json::Value mach = json::Value::object();
            mach["name"] = opts.machine.name;
            mach["simdWidth"] = opts.machine.simdWidth;
            mach["hasSagu"] = opts.machine.hasSagu;
            root["machine"] = std::move(mach);
            root["compilation"] = compiled.report.toJson();

            json::Value run = json::Value::object();
            run["iterations"] = cfg.iters;
            run["threads"] = cfg.threads;
            run["sinkElements"] = produced;
            run["totalCycles"] = cost.totalCycles();
            run["cyclesPerElement"] =
                produced ? cost.totalCycles() / produced : 0.0;
            run["cost"] = cost.toJson(names);
            // With --threads the parallel runner's stats subsume the
            // serial ones and add the "parallel" section (partition,
            // rings, measured speedup).
            json::Value stats =
                par ? par->statsToJson() : r.statsToJson();
            if (haveTune)
                stats["tuner"] = tuneResult.toJson();
            run["stats"] = std::move(stats);
            root["run"] = std::move(run);

            root["trace"] = trace.toJson();

            std::ofstream out(cfg.jsonReportFile);
            fatalIf(!out, "cannot open ", cfg.jsonReportFile,
                    " for writing");
            out << root.dump(2) << "\n";
            std::printf("wrote JSON report to %s\n",
                        cfg.jsonReportFile.c_str());
        }
        // Exit 5: the run finished, but only by degrading down the
        // ladder without being able to verify the pre-fault output
        // prefix (non-exact SimdSpec, or the fallback never ran to a
        // comparable point). The output is complete but from a lower
        // rung, and its prefix is unvouched-for.
        bool degradedUnverified =
            r.degradedFromNative() && !r.degradeVerified();
        if (par) {
            for (const auto& f : par->faults())
                if (f.fallbackUsed && !f.fallbackVerified)
                    degradedUnverified = true;
            if (const interp::Runner* fb = par->fallbackRunner())
                if (fb->degradedFromNative() &&
                    !fb->degradeVerified())
                    degradedUnverified = true;
        }
        if (degradedUnverified) {
            std::fprintf(stderr,
                         "run completed degraded without prefix "
                         "verification\n");
            return 5;
        }
        return 0;
    } catch (const native::NativeFaultError& e) {
        // Structured native fault under --degrade off: the typed
        // record names exactly what died and where.
        const native::NativeFaultRecord& rec = e.record();
        std::fprintf(stderr, "native fault: %s\n",
                     toString(rec.kind).c_str());
        std::fprintf(stderr, "  phase:     %s\n", rec.phase.c_str());
        if (rec.signal)
            std::fprintf(stderr, "  signal:    %d (%s)\n", rec.signal,
                         rec.signalName.c_str());
        std::fprintf(stderr, "  partition: %d\n", rec.partition);
        std::fprintf(stderr, "  batch:     %lld\n",
                     static_cast<long long>(rec.batchIndex));
        if (rec.exitCode)
            std::fprintf(stderr, "  exit code: %d\n", rec.exitCode);
        std::fprintf(stderr, "  %s\n", rec.message.c_str());
        return 4;
    } catch (const FatalError& e) {
        // User-facing input error: bad program, bad option value.
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    } catch (const PanicError& e) {
        // Internal invariant violation — a bug in this tool, not in
        // the user's input.
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "unexpected error: %s\n", e.what());
        return 3;
    }
}
