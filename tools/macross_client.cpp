/**
 * @file
 * macross_client — thin command-line client for macrossd.
 *
 * Submits one request per invocation and prints the daemon's JSON
 * response to stdout. The interesting exit codes mirror the CLI
 * taxonomy so scripts and CI can branch on outcome:
 *
 *   0  ok (result / stats / pong / shutdown acknowledged)
 *   1  usage error (bad flags)
 *   2  transport or daemon-fatal error
 *   3  typed "overloaded" (backpressure — retry later)
 *   4  typed "fault" (native fault contained to this request)
 *   5  any other typed error (bad-request, verify-rejected, ...)
 */
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/client.h"
#include "support/diagnostics.h"

namespace {

int usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [request]\n"
        "\n"
        "request (default --ping):\n"
        "  --bench NAME         run a built-in benchmark\n"
        "  --file F.str | -     run .str source from a file or stdin\n"
        "  --iters N            steady iterations (default 1)\n"
        "  --tenant NAME        named tenant (persists across connections)\n"
        "  --output             include raw output lanes in the result\n"
        "  --config JSON        TuneConfig-shaped config object\n"
        "  --inject-fault KIND  test hook (daemon must allow it)\n"
        "  --stats              fetch the daemon counters\n"
        "  --ping               liveness probe\n"
        "  --shutdown           ask the daemon to exit\n",
        argv0);
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    using namespace macross;

    std::string socketPath;
    service::Request req;
    req.op = service::RequestOp::Ping;
    std::string file;
    std::string configJson;
    bool haveRun = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            socketPath = value();
        } else if (arg == "--bench") {
            req.bench = value();
            haveRun = true;
        } else if (arg == "--file") {
            file = value();
            haveRun = true;
        } else if (arg == "--iters") {
            errno = 0;
            char* end = nullptr;
            const char* s = value();
            long v = std::strtol(s, &end, 10);
            if (errno != 0 || end == s || *end != '\0' || v < 1 ||
                v > INT32_MAX) {
                std::fprintf(stderr,
                             "%s: --iters wants a positive integer, "
                             "got '%s'\n",
                             argv[0], s);
                return 1;
            }
            req.iters = static_cast<int>(v);
        } else if (arg == "--tenant") {
            req.tenant = value();
        } else if (arg == "--output") {
            req.wantOutput = true;
        } else if (arg == "--config") {
            configJson = value();
        } else if (arg == "--inject-fault") {
            req.injectFault = value();
        } else if (arg == "--stats") {
            req.op = service::RequestOp::Stats;
        } else if (arg == "--ping") {
            req.op = service::RequestOp::Ping;
        } else if (arg == "--shutdown") {
            req.op = service::RequestOp::Shutdown;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n",
                         argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    if (socketPath.empty())
        return usage(argv[0]);
    if (haveRun)
        req.op = service::RequestOp::Run;

    try {
        if (!file.empty()) {
            if (file == "-") {
                std::ostringstream ss;
                ss << std::cin.rdbuf();
                req.source = ss.str();
            } else {
                std::ifstream in(file);
                if (!in) {
                    std::fprintf(stderr, "%s: cannot read %s\n",
                                 argv[0], file.c_str());
                    return 2;
                }
                std::ostringstream ss;
                ss << in.rdbuf();
                req.source = ss.str();
            }
        }
        if (!configJson.empty())
            req.config =
                tuner::TuneConfig::fromJson(json::parse(configJson));
        if (req.id.empty())
            req.id = "cli-1";

        service::Client client(socketPath);
        json::Value resp = client.call(req);
        std::printf("%s\n", resp.dump().c_str());

        const json::Value* ok = resp.find("ok");
        if (ok && ok->kind() == json::Value::Kind::Bool &&
            ok->asBool())
            return 0;
        const json::Value* kind = resp.find("kind");
        std::string k =
            kind && kind->kind() == json::Value::Kind::String
                ? kind->asString()
                : "";
        if (k == service::kind::kOverloaded)
            return 3;
        if (k == service::kind::kFault)
            return 4;
        return 5;
    } catch (const FatalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
