/**
 * @file
 * macrossd — the multi-tenant compile-and-run daemon's entry point.
 *
 * Serves the line-delimited JSON protocol of service/protocol.h on a
 * Unix-domain socket until a `shutdown` request or SIGINT/SIGTERM.
 * All policy lives in DaemonOptions; this file only parses flags,
 * installs signal handlers, and prints the final stats snapshot.
 *
 * Exit codes follow the CLI taxonomy: 0 clean shutdown, 1 usage
 * error, 2 fatal (bad socket path, bind failure).
 */
#include <signal.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/daemon.h"
#include "support/diagnostics.h"

namespace {

int usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [options]\n"
        "\n"
        "  --socket PATH        Unix-domain socket to serve (required)\n"
        "  --workers N          worker threads (default 4)\n"
        "  --run-queue N        run admission queue capacity (default 64)\n"
        "  --compile-queue N    compile admission queue capacity (default 8)\n"
        "  --admit-batch N      jobs admitted per worker wakeup (default 4)\n"
        "  --max-connections N  concurrent connections (default 64)\n"
        "  --max-iters N        per-request iteration ceiling\n"
        "  --cache-dir DIR      shared native object cache directory\n"
        "  --compiler CMD       host C++ compiler for emitted code\n"
        "  --compile-timeout-ms N  per-compile wall budget\n"
        "  --allow-fault-injection accept injectFault requests (tests)\n"
        "  --verbose            log connections and shutdown\n",
        argv0);
    return 1;
}

bool parseInt(const char* s, long long* out)
{
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (errno != 0 || end == s || *end != '\0' || v <= 0)
        return false;
    *out = v;
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    using macross::service::Daemon;
    using macross::service::DaemonOptions;

    DaemonOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        auto intValue = [&](int* slot) {
            long long v = 0;
            const char* s = value();
            if (!parseInt(s, &v) || v > INT32_MAX) {
                std::fprintf(stderr,
                             "%s: %s wants a positive integer, got "
                             "'%s'\n",
                             argv[0], arg.c_str(), s);
                std::exit(1);
            }
            *slot = static_cast<int>(v);
        };
        if (arg == "--socket") {
            opts.socketPath = value();
        } else if (arg == "--workers") {
            intValue(&opts.workers);
        } else if (arg == "--run-queue") {
            intValue(&opts.runQueueCap);
        } else if (arg == "--compile-queue") {
            intValue(&opts.compileQueueCap);
        } else if (arg == "--admit-batch") {
            intValue(&opts.admitBatch);
        } else if (arg == "--max-connections") {
            intValue(&opts.maxConnections);
        } else if (arg == "--max-iters") {
            intValue(&opts.maxIters);
        } else if (arg == "--cache-dir") {
            opts.native.cacheDir = value();
        } else if (arg == "--compiler") {
            opts.native.compiler = value();
        } else if (arg == "--compile-timeout-ms") {
            long long v = 0;
            const char* s = value();
            if (!parseInt(s, &v)) {
                std::fprintf(stderr,
                             "%s: --compile-timeout-ms wants a "
                             "positive integer, got '%s'\n",
                             argv[0], s);
                return 1;
            }
            opts.native.compileTimeoutMs = v;
        } else if (arg == "--allow-fault-injection") {
            opts.allowFaultInjection = true;
        } else if (arg == "--verbose") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n",
                         argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    if (opts.socketPath.empty())
        return usage(argv[0]);

    try {
        // Route SIGINT/SIGTERM through a dedicated sigwait thread:
        // requestShutdown takes locks and notifies condition
        // variables, none of which is legal inside an async signal
        // handler. The mask is installed before the daemon spawns
        // its threads, so every thread inherits it.
        sigset_t sigs;
        sigemptyset(&sigs);
        sigaddset(&sigs, SIGINT);
        sigaddset(&sigs, SIGTERM);
        pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

        Daemon daemon(std::move(opts));
        std::thread([&daemon, sigs]() mutable {
            int sig = 0;
            if (sigwait(&sigs, &sig) == 0)
                daemon.requestShutdown();
        }).detach();

        daemon.run();

        std::fprintf(stdout, "%s\n",
                     daemon.statsJson().dump().c_str());
        return 0;
    } catch (const macross::FatalError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
