#!/usr/bin/env sh
# Record the benchmark baselines checked into the repo root.
#
# Builds the benches in Release and reruns the figure reproductions
# (plus the native-engine throughput bench) with MACROSS_BENCH_JSON
# set, writing one machine-readable archive per figure:
#
#     BENCH_fig10a.json       modeled speedups, GCC-like host compiler
#     BENCH_fig12.json        SAGU tape-layout speedups
#     BENCH_fig13.json        multicore scaling: modeled table plus
#                             measured interpreter and native×threads
#                             wall-clock tables
#     BENCH_native_simd.json  measured wall clock: bytecode VM vs
#                             native at lane widths W=1 and W=4, the
#                             wide8/wide16 machine matrix, and the
#                             explicit -march sweep
#     BENCH_tuner.json        auto-tuner study: tuned vs default
#                             native configuration per benchmark,
#                             with every measured candidate
#
# Usage: tools/record_bench.sh [build-dir]   (default: build-release)
#
# Modeled numbers (fig10a/fig12 and fig13's first table) are
# deterministic; the measured tables in BENCH_fig13.json and all of
# BENCH_native_simd.json depend on the host machine, and the archives
# record the hardware thread count, compiler, flags, and SIMD
# lowering used so runs stay comparable.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-release"}

cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j \
    --target fig10a_gcc fig12_sagu fig13_multicore native_throughput \
             tuner_bench

run_bench() {
    bench=$1
    out=$2
    echo "== $bench -> $out"
    MACROSS_BENCH_JSON="$repo/$out" "$build/bench/$bench"
}

run_bench fig10a_gcc BENCH_fig10a.json
run_bench fig12_sagu BENCH_fig12.json
run_bench fig13_multicore BENCH_fig13.json
run_bench native_throughput BENCH_native_simd.json

# The tuner searches from scratch in a hermetic cache directory so
# the recorded numbers never depend on stale cached winners.
tunecache=$(mktemp -d "${TMPDIR:-/tmp}/macross-tune-record.XXXXXX")
(
    MACROSS_TUNE_CACHE_DIR="$tunecache"
    export MACROSS_TUNE_CACHE_DIR
    run_bench tuner_bench BENCH_tuner.json
)
rm -rf "$tunecache"

echo "wrote BENCH_fig10a.json BENCH_fig12.json BENCH_fig13.json" \
     "BENCH_native_simd.json BENCH_tuner.json to $repo"
